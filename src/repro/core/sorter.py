"""The common sorter interface shared by Backward-Sort and every baseline.

The paper implements all compared algorithms behind one interface inside
Apache IoTDB (Section V-C) so that each can be plugged into the TVList sort
call sites (flush and query).  This module is the Python analogue: a sorter
rearranges two parallel arrays — ``timestamps`` (the sort key) and ``values``
(the payload) — in place, and reports operation counts through
:class:`~repro.core.instrumentation.SortStats`.

All algorithms move *pairs*: whenever a timestamp moves, its value moves with
it.  This matches TVList semantics, where the paper notes that "the cost of
moves (TV pairs) is higher in IoTDB than that in general arrays".
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import Any, Callable, ClassVar, Sequence

from repro.core.instrumentation import SortStats, TimedResult
from repro.errors import LengthMismatchError

# Sanitizer hook (repro.analysis.sanitizer): when set, every Sorter.sort call
# is routed through runtime post-condition checks.  Resolved lazily on the
# first sort so importing this module never drags the analysis package in.
# State lives in a holder object rebound through single atomic attribute
# stores — no ``global`` read-modify-write — so concurrent first sorts race
# only on an idempotent environment lookup.
_UNRESOLVED = object()


class _SanitizeHookState:
    __slots__ = ("hook",)

    def __init__(self) -> None:
        self.hook: Any = _UNRESOLVED


_HOOK_STATE = _SanitizeHookState()


def install_sanitize_hook(
    hook: Callable[["Sorter", list, list, SortStats], None],
) -> None:
    """Route every :meth:`Sorter.sort` call through ``hook`` (sanitizer)."""
    _HOOK_STATE.hook = hook


def uninstall_sanitize_hook() -> None:
    """Remove the sanitize hook installed by :func:`install_sanitize_hook`."""
    _HOOK_STATE.hook = None


def _active_sanitize_hook() -> (
    Callable[["Sorter", list, list, SortStats], None] | None
):
    """The installed hook, honouring ``REPRO_SANITIZE`` on first use."""
    hook = _HOOK_STATE.hook
    if hook is not _UNRESOLVED:
        return hook
    hook = None
    if os.environ.get("REPRO_SANITIZE", "").strip().lower() in {
        "1",
        "true",
        "yes",
        "on",
    }:
        from repro.analysis.sanitizer import run_sanitized

        hook = run_sanitized
    _HOOK_STATE.hook = hook
    return hook


class Sorter(ABC):
    """Abstract base class for every timestamp-ordering algorithm.

    Subclasses set two class attributes and implement :meth:`_sort`:

    * ``name`` — the registry key (e.g. ``"backward"``, ``"quick"``),
    * ``stable`` — whether equal timestamps keep their arrival order.
    """

    name: ClassVar[str] = "abstract"
    stable: ClassVar[bool] = False

    #: Default observability sink for :meth:`timed_sort`.  ``None`` means the
    #: shared no-op; :func:`repro.sorting.registry.get_sorter` sets it when an
    #: ``obs`` is injected at construction.
    obs = None

    def sort(
        self,
        timestamps: list,
        values: list | None = None,
        stats: SortStats | None = None,
        *,
        series: str | None = None,
    ) -> SortStats:
        """Sort ``timestamps`` (and ``values`` alongside) in place.

        Args:
            timestamps: mutable sequence of comparable sort keys.
            values: optional payload list of the same length; permuted with
                the timestamps.  When omitted, a throwaway payload is used so
                that move accounting stays comparable across call sites.
            stats: counters to update; a fresh :class:`SortStats` is created
                when not supplied.
            series: optional stable identity of the time series being sorted
                (e.g. ``"device.sensor"``).  Sorters that keep per-series
                state across calls — Backward-Sort's block-size cache — key
                it on this; ``None`` means "no identity", and such calls use
                no cross-call state.

        Returns:
            The stats object that was updated.

        Raises:
            LengthMismatchError: if ``values`` is given with a different
                length than ``timestamps``.
        """
        if stats is None:
            stats = SortStats()
        n = len(timestamps)
        if values is None:
            values = [None] * n
        elif len(values) != n:
            raise LengthMismatchError(n, len(values))
        if n > 1:
            hook = _active_sanitize_hook()
            if hook is not None:
                hook(self, timestamps, values, stats)
            else:
                self._sort_with_series(timestamps, values, stats, series)
        return stats

    def _sort_with_series(
        self, ts: list, vs: list, stats: SortStats, series: str | None
    ) -> None:
        """Dispatch point for sorters with per-series state.

        The base implementation drops ``series`` and delegates to
        :meth:`_sort`; stateful sorters override this instead of widening
        ``_sort`` so every existing subclass keeps its three-argument body.
        """
        self._sort(ts, vs, stats)

    def timed_sort(
        self,
        timestamps: list,
        values: list | None = None,
        *,
        obs=None,
        site: str = "direct",
        series: str | None = None,
    ) -> TimedResult:
        """Run :meth:`sort` and report wall-clock seconds with the stats.

        Args:
            timestamps / values: as for :meth:`sort`.
            obs: an :class:`repro.obs.Observability`; when enabled, the call
                is wrapped in a ``sort`` span and the resulting
                :class:`SortStats` are folded into the metrics registry
                (labels ``sorter`` and ``site``).  ``None`` falls back to
                :attr:`obs` set at construction, else to no observability.
            site: the call-site label — ``"flush"``, ``"query"`` or
                ``"direct"``.
            series: forwarded to :meth:`sort` (per-series sorter state).
        """
        # Imported lazily: timing is owned by repro.bench.timing (wall-clock
        # reads are banned in hot-path modules) and most sort calls never
        # need it, so core stays import-light.
        from repro.bench.timing import Timer

        if obs is None:
            obs = self.obs
        stats = SortStats()
        if obs is None or not obs.enabled:
            with Timer() as timer:
                self.sort(timestamps, values, stats, series=series)
            return TimedResult(seconds=timer.seconds, stats=stats)
        from repro.obs.bridge import record_sort_stats

        points = len(timestamps)
        with obs.span("sort", sorter=self.name, site=site, points=points):
            with Timer(obs.clock) as timer:
                self.sort(timestamps, values, stats, series=series)
        record_sort_stats(
            obs, stats, sorter=self.name, site=site,
            seconds=timer.seconds, points=points,
        )
        return TimedResult(seconds=timer.seconds, stats=stats)

    @abstractmethod
    def _sort(self, ts: list, vs: list, stats: SortStats) -> None:
        """Algorithm body; ``ts`` and ``vs`` are equal-length with ``len >= 2``."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<{type(self).__name__} name={self.name!r} stable={self.stable}>"


def is_sorted(seq: Sequence[Any]) -> bool:
    """Return True when ``seq`` is non-decreasing."""
    return all(seq[i] <= seq[i + 1] for i in range(len(seq) - 1))


def insertion_sort_range(
    ts: list, vs: list, lo: int, hi: int, stats: SortStats
) -> None:
    """Straight insertion sort of ``ts[lo:hi]`` (and ``vs``) in place.

    Shared by several algorithms (Backward-Sort's ``L = 1`` degenerate case,
    CKSort's small-array path, Timsort's run extension fallback).  Stable.
    """
    comparisons = 0
    moves = 0
    for i in range(lo + 1, hi):
        key_t = ts[i]
        key_v = vs[i]
        j = i - 1
        # Fast path: already in position (one comparison, zero moves).
        comparisons += 1
        if ts[j] <= key_t:
            continue
        while j >= lo:
            if ts[j] > key_t:
                ts[j + 1] = ts[j]
                vs[j + 1] = vs[j]
                moves += 1
                j -= 1
                if j >= lo:
                    comparisons += 1
            else:
                break
        ts[j + 1] = key_t
        vs[j + 1] = key_v
        moves += 1
    stats.comparisons += comparisons
    stats.moves += moves


def binary_insertion_sort_range(
    ts: list, vs: list, lo: int, hi: int, start: int, stats: SortStats
) -> None:
    """Binary insertion sort of ``ts[lo:hi]``, assuming ``ts[lo:start]`` sorted.

    Used by Timsort to extend short natural runs to ``minrun``.  Stable:
    the insertion point for equal keys is after the existing ones.
    """
    comparisons = 0
    moves = 0
    if start <= lo:
        start = lo + 1
    for i in range(start, hi):
        key_t = ts[i]
        key_v = vs[i]
        left, right = lo, i
        while left < right:
            mid = (left + right) >> 1
            comparisons += 1
            if key_t < ts[mid]:
                right = mid
            else:
                left = mid + 1
        for j in range(i, left, -1):
            ts[j] = ts[j - 1]
            vs[j] = vs[j - 1]
            moves += 1
        if left != i:
            ts[left] = key_t
            vs[left] = key_v
            moves += 1
    stats.comparisons += comparisons
    stats.moves += moves
