"""Core of the reproduction: the Backward-Sort algorithm and its phases."""

from repro.core.backward_merge import backward_merge_blocks, merge_block_into_suffix
from repro.core.backward_sort import (
    BLOCK_SORTERS,
    BackwardSorter,
    compute_block_bounds,
)
from repro.core.block_size import (
    DEFAULT_L0,
    DEFAULT_THETA,
    BlockSizeResult,
    empirical_interval_inversion_ratio,
    find_block_size,
)
from repro.core.instrumentation import SortStats, TimedResult
from repro.core.reorder_buffer import ReorderBuffer
from repro.core.sorter import Sorter, is_sorted

__all__ = [
    "BLOCK_SORTERS",
    "BackwardSorter",
    "BlockSizeResult",
    "DEFAULT_L0",
    "DEFAULT_THETA",
    "ReorderBuffer",
    "SortStats",
    "Sorter",
    "TimedResult",
    "backward_merge_blocks",
    "compute_block_bounds",
    "empirical_interval_inversion_ratio",
    "find_block_size",
    "is_sorted",
    "merge_block_into_suffix",
]
