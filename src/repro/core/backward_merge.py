"""The "backward merge" phase of Backward-Sort (Algorithm 1, lines 13-16).

Blocks are processed from the back of the array: when block ``i`` is reached,
the whole suffix to its right is already one sorted run, so merging block
``i`` amounts to interleaving the *overlap* — the tail of the block that
exceeds the suffix head, and the head of the suffix that undercuts the block
tail.  Under the paper's delay-only / not-too-distant arrival model the
expected overlap ``Q`` is bounded by ``E(Δτ | Δτ >= 0)`` (Proposition 4), so
merges are local, the auxiliary buffer only ever holds the overlapping
points, and points move strictly *backward* — the behaviour Figure 2 credits
with ~25 % fewer moves than straight merge.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from repro.core.instrumentation import SortStats


def merge_block_into_suffix(
    ts: list, vs: list, block_start: int, suffix_start: int, stats: SortStats
) -> int:
    """Merge sorted ``ts[block_start:suffix_start]`` into sorted ``ts[suffix_start:]``.

    The merge is stable (block elements precede equal-timestamp suffix
    elements, preserving arrival order) and in place except for a buffer of
    exactly the overlap length.

    Returns:
        The overlap length ``u`` — how many suffix points had to interleave
        with the block.  ``0`` means the block head already abutted the
        suffix (the common fast path: one comparison, zero moves).
    """
    n = len(ts)
    s = suffix_start
    stats.comparisons += 1
    if ts[s - 1] <= ts[s]:
        stats.merges += 1  # zero-overlap merges still count toward mean Q
        return 0

    block_max = ts[s - 1]
    # Suffix points strictly below the block max participate in the merge;
    # equal points stay put (suffix arrived later, so they sort after).
    u = bisect_left(ts, block_max, s, n) - s
    # Block points at or below the suffix head are already in position.
    w = bisect_right(ts, ts[s], block_start, s)
    stats.comparisons += _bisect_cost(n - s) + _bisect_cost(s - block_start)

    # Buffer the overlapping head of the suffix, then merge right-to-left.
    buf_t = ts[s : s + u]
    buf_v = vs[s : s + u]
    stats.moves += u
    stats.note_extra_space(u)

    # Galloping right-to-left merge: instead of comparing one pair at a
    # time, binary-search how far each side runs before the other
    # interleaves and move whole runs as slices.  Delay-only data has long
    # runs, so the Python-level iteration count is the number of
    # interleavings, not the number of elements.
    k = s + u - 1  # next write position
    i = s - 1  # block cursor (moving left, stops at w)
    j = u - 1  # buffer cursor
    comparisons = 0
    moves = 0
    while j >= 0 and i >= w:
        # Block elements strictly greater than buf[j] stay to its right
        # (ties keep the block element left: arrival order, stability).
        split = bisect_right(ts, buf_t[j], w, i + 1)
        run = i + 1 - split
        comparisons += _bisect_cost(i + 1 - w)
        if run:
            ts[k - run + 1 : k + 1] = ts[split : i + 1]
            vs[k - run + 1 : k + 1] = vs[split : i + 1]
            k -= run
            i -= run
            moves += run
            if i < w:
                break
        # Buffer elements >= ts[i] belong to the right of the block top
        # (equal buffer points arrived later, so they sort after: stable).
        split_b = bisect_left(buf_t, ts[i], 0, j + 1)
        run_b = j + 1 - split_b
        comparisons += _bisect_cost(j + 1)
        ts[k - run_b + 1 : k + 1] = buf_t[split_b : j + 1]
        vs[k - run_b + 1 : k + 1] = buf_v[split_b : j + 1]
        k -= run_b
        j -= run_b
        moves += run_b
    if j >= 0:
        # Block exhausted: flush the remaining buffer prefix.
        ts[k - j : k + 1] = buf_t[: j + 1]
        vs[k - j : k + 1] = buf_v[: j + 1]
        moves += j + 1
    # If the buffer exhausted first, the remaining block elements already sit
    # at their final positions (k == i at that point) — nothing to move.
    stats.comparisons += comparisons
    stats.moves += moves
    stats.merges += 1
    stats.overlap_total += u
    return u


def backward_merge_blocks(
    ts: list, vs: list, block_bounds: list[int], stats: SortStats
) -> None:
    """Merge individually sorted consecutive blocks, back to front.

    ``block_bounds`` holds half-open boundaries ``[0, b1, ..., N]``; each
    ``ts[b_i:b_{i+1}]`` must already be sorted.  After the call the whole
    array is sorted.  This is the loop of Algorithm 1 lines 13-16; the
    "findOverlappedBlock" step is implicit in the binary searches of
    :func:`merge_block_into_suffix`, which locate exactly how far into the
    following blocks the current block reaches.
    """
    for b in range(len(block_bounds) - 2, 0, -1):
        merge_block_into_suffix(ts, vs, block_bounds[b - 1], block_bounds[b], stats)


def _bisect_cost(length: int) -> int:
    """Comparison count charged for a binary search over ``length`` elements."""
    return max(1, length.bit_length())
