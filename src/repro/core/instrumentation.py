"""Operation-count instrumentation shared by every sorter in the library.

The paper evaluates sorting algorithms by wall-clock time on a Java testbed.
A pure-Python reproduction cannot match absolute timings, so alongside
wall-clock we record *platform-independent* operation counts:

* ``comparisons`` — key comparisons between two timestamps,
* ``moves``       — element writes (a swap counts as three moves, matching
  the paper's accounting in Example 3 where the temporary hop of ``3`` into
  the buffer and back costs two extra moves),
* ``extra_space`` — the peak number of auxiliary element slots held at once.

These counts let the benchmark harness reproduce the *shape* of the paper's
figures (who wins, by what factor, where crossovers fall) independently of
interpreter constant factors.  Sorters update a :class:`SortStats` instance
in-place; passing none makes them allocate a private one, so counting is
always on and uniform across algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SortStats:
    """Mutable counters filled in by a single sort invocation.

    Attributes:
        comparisons: number of timestamp comparisons performed.
        moves: number of element writes (buffer hops included).
        extra_space: peak auxiliary element slots used at any moment.
        block_size: the block length ``L`` chosen by Backward-Sort
            (``None`` for algorithms without a blocking phase).
        block_count: number of blocks Backward-Sort partitioned into.
        merges: number of (backward) merge operations executed.
        overlap_total: sum of overlap lengths over all backward merges; the
            average ``overlap_total / merges`` estimates the paper's ``Q``.
        block_size_loops: iterations of the set-block-size loop (paper's ``P``).
        scanned_points: points examined while estimating interval inversion
            ratios during set-block-size (bounded by ``2 n / L0``, Prop. 3).
        runs: number of natural runs detected (Patience / Timsort).
    """

    comparisons: int = 0
    moves: int = 0
    extra_space: int = 0
    block_size: int | None = None
    block_count: int = 0
    merges: int = 0
    overlap_total: int = 0
    block_size_loops: int = 0
    scanned_points: int = 0
    runs: int = 0

    def note_extra_space(self, slots: int) -> None:
        """Record a high-water mark of ``slots`` simultaneous auxiliary slots."""
        if slots > self.extra_space:
            self.extra_space = slots

    @property
    def mean_overlap(self) -> float:
        """Average overlap length per backward merge (the empirical ``Q``)."""
        if self.merges == 0:
            return 0.0
        return self.overlap_total / self.merges

    def merge(self, other: "SortStats") -> None:
        """Accumulate counters from ``other`` (used when composing sorters)."""
        self.comparisons += other.comparisons
        self.moves += other.moves
        self.note_extra_space(other.extra_space)
        self.block_count += other.block_count
        self.merges += other.merges
        self.overlap_total += other.overlap_total
        self.block_size_loops += other.block_size_loops
        self.scanned_points += other.scanned_points
        self.runs += other.runs

    def as_dict(self) -> dict[str, int | float | None]:
        """Export counters as a plain dict for reporting tables."""
        return {
            "comparisons": self.comparisons,
            "moves": self.moves,
            "extra_space": self.extra_space,
            "block_size": self.block_size,
            "block_count": self.block_count,
            "merges": self.merges,
            "mean_overlap": self.mean_overlap,
            "block_size_loops": self.block_size_loops,
            "scanned_points": self.scanned_points,
            "runs": self.runs,
        }


@dataclass
class TimedResult:
    """A sort outcome paired with its wall-clock duration.

    Attributes:
        seconds: elapsed wall-clock time of the sort call.
        stats: operation counters recorded during the call.
    """

    seconds: float
    stats: SortStats = field(default_factory=SortStats)
