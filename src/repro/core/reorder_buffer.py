"""Online reordering: a streaming counterpart to Backward-Sort.

Backward-Sort fixes disorder *in batch* at flush/query time.  The same two
arrival features — delay-only and not-too-distant — also enable an *online*
fix: hold arriving points in a small buffer and release them in timestamp
order once no earlier point can still arrive.  This is the reorder-buffer
idiom of out-of-order stream processing (the paper's §VII sliding-window
related work), sized by exactly the quantity Backward-Sort's analysis
provides: the expected overlap ``Q`` bounds how far back a late point
reaches, so a buffer of a few multiples of ``Q`` reorders almost everything.

:class:`ReorderBuffer` is capacity-bound, so it cannot stall on an
arbitrarily late point: when full it emits its minimum; a point arriving
with a timestamp below the last emitted one is a *straggler* and is routed
to the ``on_late`` callback — the in-memory analogue of IoTDB's separation
policy sending extreme laggards to the unsequence memtable.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator

from repro.errors import InvalidParameterError


class ReorderBuffer:
    """Bounded min-heap reorderer with straggler routing.

    Args:
        capacity: maximum points held; when exceeded the minimum-timestamp
            point is emitted.  Larger capacity tolerates longer delays
            (size it ≳ a few × the stream's expected overlap ``Q``).
        on_late: called with ``(timestamp, value)`` for stragglers that
            arrive after their slot was already emitted; default drops them
            into :attr:`late_points`.
    """

    def __init__(
        self,
        capacity: int,
        on_late: Callable[[int, object], None] | None = None,
    ) -> None:
        if capacity < 1:
            raise InvalidParameterError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.late_points: list[tuple[int, object]] = []
        self._on_late = on_late if on_late is not None else self._collect_late
        self._heap: list[tuple[int, int, object]] = []
        self._sequence = 0  # FIFO tie-break for equal timestamps
        self._watermark: int | None = None  # last emitted timestamp
        self.emitted = 0
        self.stragglers = 0

    def _collect_late(self, timestamp: int, value: object) -> None:
        self.late_points.append((timestamp, value))

    def push(self, timestamp: int, value: object = None) -> Iterator[tuple[int, object]]:
        """Insert one arrival; yields any points released in order."""
        if self._watermark is not None and timestamp < self._watermark:
            self.stragglers += 1
            self._on_late(timestamp, value)
            return
        heapq.heappush(self._heap, (timestamp, self._sequence, value))
        self._sequence += 1
        while len(self._heap) > self.capacity:
            yield self._emit_min()

    def _emit_min(self) -> tuple[int, object]:
        timestamp, _, value = heapq.heappop(self._heap)
        self._watermark = timestamp
        self.emitted += 1
        return timestamp, value

    def drain(self) -> Iterator[tuple[int, object]]:
        """Release everything still buffered, in order (end of stream)."""
        while self._heap:
            yield self._emit_min()

    def process(self, arrivals: Iterable[tuple[int, object]]) -> Iterator[tuple[int, object]]:
        """Reorder a whole arrival iterable, draining at the end."""
        for timestamp, value in arrivals:
            yield from self.push(timestamp, value)
        yield from self.drain()

    def __len__(self) -> int:
        return len(self._heap)
