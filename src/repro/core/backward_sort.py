"""Backward-Sort (Algorithm 1) — the paper's primary contribution.

The algorithm has three phases, each implemented in its own module so that
the benchmark harness can measure and ablate them independently:

1. **Set block size** (:mod:`repro.core.block_size`): grow ``L`` from ``L0``
   until the empirical interval inversion ratio drops below ``Θ``.
2. **Sort by blocks**: partition into ``⌊N/L⌋`` blocks (the final block
   absorbs the remainder) and sort each independently — Quicksort by default,
   "and can be substituted by other algorithms" (the ``block_sort`` knob).
3. **Backward merge** (:mod:`repro.core.backward_merge`): merge blocks back
   to front, buffering only the overlap.

Degenerate cases (Proposition 5): ``L = 1`` turns the algorithm into straight
Insertion-Sort; ``L = N`` into plain Quicksort.  Both are reachable through
``fixed_block_size`` and are exercised by the ablation benchmarks.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, ClassVar

from repro.core.block_size import (
    DEFAULT_L0,
    DEFAULT_THETA,
    BlockSizeCache,
    BlockSizeResult,
    empirical_interval_inversion_ratio,
    find_block_size,
)
from repro.core.backward_merge import backward_merge_blocks
from repro.core.instrumentation import SortStats
from repro.core.sorter import Sorter, insertion_sort_range
from repro.errors import InvalidParameterError

#: A range sorter: ``(ts, vs, lo, hi, stats) -> None`` sorting ``ts[lo:hi]``.
BlockSortFn = Callable[[list, list, int, int, SortStats], None]


@lru_cache(maxsize=1)
def _resolve_quicksort_range():
    # Imported lazily (repro.sorting's registry imports this module back)
    # and cached through lru_cache, which is thread-safe, instead of a
    # rebindable module global.
    from repro.sorting.quicksort import quicksort_range

    return quicksort_range


def _quick_block_sort(ts: list, vs: list, lo: int, hi: int, stats: SortStats) -> None:
    _resolve_quicksort_range()(ts, vs, lo, hi, stats, cutoff=32)


def _insertion_block_sort(
    ts: list, vs: list, lo: int, hi: int, stats: SortStats
) -> None:
    insertion_sort_range(ts, vs, lo, hi, stats)


def _tim_block_sort(ts: list, vs: list, lo: int, hi: int, stats: SortStats) -> None:
    # Imported lazily to avoid a cycle at module import time.
    from repro.sorting.timsort import TimSorter

    sub_t = ts[lo:hi]
    sub_v = vs[lo:hi]
    TimSorter().sort(sub_t, sub_v, stats)
    ts[lo:hi] = sub_t
    vs[lo:hi] = sub_v
    stats.moves += 2 * (hi - lo)


def _run_adaptive_block_sort(
    ts: list, vs: list, lo: int, hi: int, stats: SortStats
) -> None:
    """Extension beyond the paper: skip blocks that are natural runs.

    "Incrementally nearly sorted" data (§II-B1) makes many blocks arrive
    already in order; a linear scan detects that for ``hi - lo`` comparisons
    and skips the sort entirely, falling back to Quicksort otherwise.  The
    ablation benchmark compares this against the paper's plain Quicksort
    blocks.
    """
    sorted_prefix = True
    prev = ts[lo]
    for i in range(lo + 1, hi):
        cur = ts[i]
        if cur < prev:
            sorted_prefix = False
            break
        prev = cur
    stats.comparisons += hi - lo - 1
    if sorted_prefix:
        stats.runs += 1
        return
    _quick_block_sort(ts, vs, lo, hi, stats)


BLOCK_SORTERS: dict[str, BlockSortFn] = {
    "quick": _quick_block_sort,
    "insertion": _insertion_block_sort,
    "tim": _tim_block_sort,
    "run-adaptive": _run_adaptive_block_sort,
}


def compute_block_bounds(n: int, block_size: int) -> list[int]:
    """Half-open block boundaries ``[0, L, 2L, ..., n]`` for ``⌊n/L⌋`` blocks.

    Following Algorithm 1 line 9 (``B = ⌊N/L⌋``) the final block absorbs the
    remainder, so its length lies in ``[L, 2L)`` — a short straggler block
    would only add merge overhead.
    """
    if block_size < 1:
        raise InvalidParameterError(f"block_size must be >= 1, got {block_size}")
    if n == 0:
        return [0]
    b = max(1, n // block_size)
    bounds = [i * block_size for i in range(b)]
    bounds.append(n)
    return bounds


class BackwardSorter(Sorter):
    """The paper's Backward-Sort, with every tuning knob exposed.

    Args:
        theta: empirical IIR threshold ``Θ`` for the block-size search
            (paper default 0.04).
        l0: initial block size ``L0`` (paper default 4).
        fixed_block_size: bypass the search and use this ``L`` directly —
            the mode used by the parameter-tuning experiment of Figure 8(b).
        block_sort: which algorithm sorts each block: ``"quick"`` (paper
            default), ``"insertion"``, or ``"tim"``.
        growth: block-size growth strategy, ``"double"`` or ``"ratio"``.
        cache_block_sizes: remember the chosen ``L`` per series (the
            ``series`` argument of :meth:`Sorter.sort`) and, on the next
            sort of the same series, revalidate it with a single boundary
            probe instead of rerunning the doubling search.  A probe that
            fails (``α̃ >= Θ``) falls back to the search seeded at ``2 L``,
            so a series whose disorder grows still converges.  Sorts with
            no ``series`` identity never touch the cache, which keeps the
            standalone benchmark cells byte-identical to the uncached
            sorter.

    Stability: sorting inside blocks uses Quicksort by default, which is
    unstable, so the composite is unstable (matching the paper's
    implementation).  With ``block_sort="insertion"`` or ``"tim"`` the whole
    algorithm is stable, because the backward merge itself is stable.
    """

    name = "backward"
    stable = False

    #: Stability of the composite per block_sort choice.
    _STABLE_BLOCK_SORTS: ClassVar[frozenset[str]] = frozenset({"insertion", "tim"})

    def __init__(
        self,
        theta: float = DEFAULT_THETA,
        l0: int = DEFAULT_L0,
        fixed_block_size: int | None = None,
        block_sort: str = "quick",
        growth: str = "double",
        cache_block_sizes: bool = True,
    ) -> None:
        if block_sort not in BLOCK_SORTERS:
            raise InvalidParameterError(
                f"block_sort must be one of {sorted(BLOCK_SORTERS)}, got {block_sort!r}"
            )
        if fixed_block_size is not None and fixed_block_size < 1:
            raise InvalidParameterError(
                f"fixed_block_size must be >= 1, got {fixed_block_size}"
            )
        self.theta = theta
        self.l0 = l0
        self.fixed_block_size = fixed_block_size
        self.block_sort = block_sort
        self.growth = growth
        self.cache_block_sizes = cache_block_sizes
        self._block_sort_fn = BLOCK_SORTERS[block_sort]
        self.stable = block_sort in self._STABLE_BLOCK_SORTS
        self.last_block_size: BlockSizeResult | None = None
        self.block_size_cache = BlockSizeCache()

    def _choose_block_size(
        self, ts: list, stats: SortStats, series: str | None
    ) -> int:
        """Phase 1 with the per-series ``L`` cache in front of the search.

        Cache hit: revalidate the remembered ``L`` with
        :func:`empirical_interval_inversion_ratio` probes (each ``n / L``
        sampled pairs — the cost of one search iteration).

        * Probe at ``L`` fails (``α̃ >= Θ``): disorder grew, so the doubling
          search resumes from ``2 L`` — exactly where it would have been had
          it probed ``L`` itself.
        * Probe at ``L`` passes: descend while the next halving rung also
          passes, so the chosen ``L`` stays *minimal* in the doubling
          lattice.  Without this, a large ``L`` remembered from one
          high-disorder chunk keeps trivially passing forever (at
          ``L ≈ n`` there are almost no boundary pairs to probe, so
          ``α̃ = 0``) and every later chunk degenerates to one quicksorted
          block — strictly more sort work than the properly sized blocks.

        Steady state is the single passing probe at ``L`` plus one failing
        probe at ``L / 2`` — geometrically cheaper than rerunning the search
        from ``L0`` whenever the converged ``L`` sits above ``2 L0``.
        """
        n = len(ts)
        cached = None
        if self.cache_block_sizes and series is not None:
            cached = self.block_size_cache.get(series)
        if cached is None:
            result = find_block_size(
                ts, theta=self.theta, l0=self.l0, growth=self.growth, stats=stats
            )
        else:
            probed = min(cached, n)
            local = SortStats()
            alpha = empirical_interval_inversion_ratio(ts, probed, stats=local)
            loops = 1
            history = [(probed, alpha)]
            if alpha >= self.theta:
                searched = find_block_size(
                    ts,
                    theta=self.theta,
                    l0=probed * 2,
                    growth=self.growth,
                    stats=stats,
                )
                stats.scanned_points += local.scanned_points
                stats.comparisons += local.comparisons
                stats.block_size_loops += loops
                result = BlockSizeResult(
                    block_size=searched.block_size,
                    loops=searched.loops + loops,
                    scanned_points=searched.scanned_points + local.scanned_points,
                    history=history + searched.history,
                )
            else:
                size = probed
                while size // 2 >= self.l0:
                    lower = size // 2
                    alpha = empirical_interval_inversion_ratio(
                        ts, lower, stats=local
                    )
                    loops += 1
                    history.append((lower, alpha))
                    if alpha >= self.theta:
                        break
                    size = lower
                stats.scanned_points += local.scanned_points
                stats.comparisons += local.comparisons
                stats.block_size_loops += loops
                result = BlockSizeResult(
                    block_size=min(size, max(n, 1)),
                    loops=loops,
                    scanned_points=local.scanned_points,
                    history=history,
                )
        # A degenerate result (L >= n, single quicksorted block) says "this
        # chunk was too small to decompose", not anything about the series'
        # steady-state disorder — caching it would poison the next, larger
        # chunk's block size, so only real decompositions are remembered.
        if self.cache_block_sizes and series is not None and result.block_size < n:
            self.block_size_cache.put(series, result.block_size)
        self.last_block_size = result
        return result.block_size

    def _sort(self, ts: list, vs: list, stats: SortStats) -> None:
        self._sort_with_series(ts, vs, stats, None)

    def _sort_with_series(
        self, ts: list, vs: list, stats: SortStats, series: str | None
    ) -> None:
        n = len(ts)
        if self.fixed_block_size is not None:
            block_size = min(self.fixed_block_size, n)
            self.last_block_size = BlockSizeResult(
                block_size=block_size, loops=0, scanned_points=0
            )
        else:
            block_size = self._choose_block_size(ts, stats, series)
        stats.block_size = block_size

        if block_size <= 1:
            # Degenerate case L = 1: straight Insertion-Sort (Prop. 5).
            insertion_sort_range(ts, vs, 0, n, stats)
            stats.block_count = n
            return
        if block_size >= n:
            # Degenerate case L = N: plain Quicksort (Prop. 5).
            self._block_sort_fn(ts, vs, 0, n, stats)
            stats.block_count = 1
            return

        bounds = compute_block_bounds(n, block_size)
        stats.block_count = len(bounds) - 1
        block_sort = self._block_sort_fn
        for b in range(len(bounds) - 1):
            block_sort(ts, vs, bounds[b], bounds[b + 1], stats)
        backward_merge_blocks(ts, vs, bounds, stats)
