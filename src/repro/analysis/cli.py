"""``repro-analyze`` — run the project lint rules from the command line.

Examples::

    repro-analyze src/repro                      # all rules, text output
    repro-analyze --rules wall-clock src/repro   # one rule
    repro-analyze --exclude-rule lock-order src/repro  # all but one
    repro-analyze --format json src/repro        # machine-readable (CI)
    repro-analyze --list-rules                   # what can run

Exit status: 0 when clean, 1 when findings were reported, 2 on usage
errors (unknown rule, missing path).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.linter import run_linter
from repro.analysis.rules import all_rules, available_rules, get_rules
from repro.errors import InvalidParameterError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="AST invariant linter for the Backward-Sort reproduction.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--rules",
        action="append",
        default=None,
        metavar="ID[,ID...]",
        help="comma-separated rule IDs to run (default: all); repeatable",
    )
    parser.add_argument(
        "--exclude-rule",
        action="append",
        default=None,
        metavar="ID[,ID...]",
        help="comma-separated rule IDs to skip (applied after --rules); repeatable",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list available rules and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}: {rule.description}")
        return 0

    def split_ids(chunks: list[str] | None) -> list[str]:
        return [
            rule_id.strip()
            for chunk in chunks or []
            for rule_id in chunk.split(",")
            if rule_id.strip()
        ]

    try:
        rules = all_rules() if args.rules is None else get_rules(split_ids(args.rules))
        excluded = split_ids(args.exclude_rule)
        if excluded:
            get_rules(excluded)  # validate the IDs exist
            rules = [rule for rule in rules if rule.rule_id not in excluded]
    except InvalidParameterError as exc:
        print(f"repro-analyze: {exc}", file=sys.stderr)
        return 2

    paths = args.paths or ["src/repro"]
    try:
        findings = run_linter(paths, rules)
    except InvalidParameterError as exc:
        print(f"repro-analyze: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(
            json.dumps(
                {
                    "paths": [str(path) for path in paths],
                    "rules": [rule.rule_id for rule in rules],
                    "findings": [finding.as_dict() for finding in findings],
                    "count": len(findings),
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        summary = f"{len(findings)} finding(s)" if findings else "clean"
        print(f"repro-analyze: {summary} ({len(rules)} rule(s))")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
