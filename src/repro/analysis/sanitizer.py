"""Runtime sort-sanitizer: post-condition checks around any sorter.

Wraps a :class:`~repro.core.sorter.Sorter` invocation and asserts, after the
algorithm body ran:

1. both arrays keep their length,
2. the timestamps come out non-decreasing,
3. the ``(timestamp, value)`` pairs are exactly a permutation of the input
   (checked by object identity, so a merge bug that duplicates an element is
   caught even when the duplicate compares equal),
4. every :class:`~repro.core.instrumentation.SortStats` counter is monotone
   across the call, and
5. the reported ``moves`` are consistent with the mutations actually
   observed: the arrays are wrapped in a :class:`TracingList` proxy that
   counts element writes, and a sorter may never report fewer moves than
   writes it performed (an undercount would corrupt the paper's move-count
   figures silently).

Activation: set ``REPRO_SANITIZE=1`` (the whole test suite then runs
sanitized through the hook in :meth:`repro.core.sorter.Sorter.sort`), wrap a
single sorter in :class:`SanitizingSorter`, or call :func:`run_sanitized`
directly.  Violations raise :class:`SanitizerViolation`.
"""

from __future__ import annotations

import os
import threading
from collections import Counter
from dataclasses import fields

from repro.errors import SortError

#: Environment variable that turns global sanitization on.
SANITIZE_ENV = "REPRO_SANITIZE"

_TRUTHY = frozenset({"1", "true", "yes", "on"})

class _SanitizeDepth(threading.local):
    """Per-thread nesting depth of sanitized sorts.

    Non-zero while a sanitized sort is running, so sorters that internally
    call other sorters (Backward-Sort's tim block sort, for example) are not
    re-wrapped: one sanitizer layer per top-level sort call.  Thread-local so
    concurrent sorts on different threads each get their own layer.
    """

    value = 0


_DEPTH = _SanitizeDepth()


class SanitizerViolation(SortError):
    """A sorter broke a post-condition the sanitizer checks."""


class TracingList(list):
    """A list that counts element writes.

    ``writes`` sums element stores: one per ``lst[i] = x``, the assigned
    length per slice store, one per ``append``/``insert``/``pop``/…, and the
    list length per ``sort``/``reverse``/``clear`` (bulk rearrangement).
    Reads are free, and slicing returns plain lists, so sorters behave
    identically under tracing.
    """

    def __init__(self, iterable=()):
        super().__init__(iterable)
        self.writes = 0

    def __setitem__(self, index, value):
        if isinstance(index, slice):
            value = list(value)
            self.writes += len(value)
        else:
            self.writes += 1
        super().__setitem__(index, value)

    def __delitem__(self, index):
        self.writes += 1
        super().__delitem__(index)

    def append(self, value):
        self.writes += 1
        super().append(value)

    def extend(self, iterable):
        items = list(iterable)
        self.writes += len(items)
        super().extend(items)

    def insert(self, index, value):
        self.writes += 1
        super().insert(index, value)

    def pop(self, index=-1):
        self.writes += 1
        return super().pop(index)

    def remove(self, value):
        self.writes += 1
        super().remove(value)

    def clear(self):
        self.writes += len(self)
        super().clear()

    def sort(self, **kwargs):
        self.writes += len(self)
        super().sort(**kwargs)

    def reverse(self):
        self.writes += len(self)
        super().reverse()


def sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` requests global sanitization."""
    return os.environ.get(SANITIZE_ENV, "").strip().lower() in _TRUTHY


def _pair_multiset(ts, vs) -> Counter:
    return Counter((t, id(v)) for t, v in zip(ts, vs))


def _stat_snapshot(stats) -> dict[str, int]:
    snapshot: dict[str, int] = {}
    for spec in fields(stats):
        value = getattr(stats, spec.name)
        if isinstance(value, int):
            snapshot[spec.name] = value
    return snapshot


def run_sanitized(sorter, ts: list, vs: list, stats) -> None:
    """Run ``sorter._sort`` on ``(ts, vs)`` with post-condition checks.

    Drop-in replacement for the ``self._sort(timestamps, values, stats)``
    call inside :meth:`repro.core.sorter.Sorter.sort`: the caller's lists are
    mutated in place exactly as an unsanitized sort would.  Nested sort calls
    issued by the algorithm itself run unsanitized (one layer of checks per
    top-level call).

    Raises:
        SanitizerViolation: on any broken post-condition.
    """
    if _DEPTH.value > 0:
        sorter._sort(ts, vs, stats)
        return

    n = len(ts)
    name = getattr(sorter, "name", type(sorter).__name__)
    before_pairs = _pair_multiset(ts, vs)
    before_stats = _stat_snapshot(stats)
    proxy_t = TracingList(ts)
    proxy_v = TracingList(vs)

    _DEPTH.value += 1
    try:
        sorter._sort(proxy_t, proxy_v, stats)
    finally:
        _DEPTH.value -= 1
    ts[:] = proxy_t
    vs[:] = proxy_v

    if len(ts) != n or len(vs) != n:
        raise SanitizerViolation(
            f"sorter {name!r} changed array lengths: "
            f"{n} -> ts={len(ts)}, vs={len(vs)}"
        )
    for i in range(n - 1):
        if ts[i] > ts[i + 1]:
            raise SanitizerViolation(
                f"sorter {name!r} output is not sorted: "
                f"ts[{i}]={ts[i]!r} > ts[{i + 1}]={ts[i + 1]!r}"
            )
    after_pairs = _pair_multiset(ts, vs)
    if after_pairs != before_pairs:
        missing = before_pairs - after_pairs
        extra = after_pairs - before_pairs
        raise SanitizerViolation(
            f"sorter {name!r} did not permute the (ts, vs) pairs: "
            f"{sum(missing.values())} pair(s) lost, "
            f"{sum(extra.values())} pair(s) fabricated "
            "(timestamps and values moved out of lockstep?)"
        )

    after_stats = _stat_snapshot(stats)
    for counter, before in before_stats.items():
        if after_stats.get(counter, before) < before:
            raise SanitizerViolation(
                f"sorter {name!r} decreased stats.{counter}: "
                f"{before} -> {after_stats[counter]}"
            )
    delta_moves = after_stats.get("moves", 0) - before_stats.get("moves", 0)
    observed = max(proxy_t.writes, proxy_v.writes)
    if delta_moves < observed:
        raise SanitizerViolation(
            f"sorter {name!r} under-counted moves: stats.moves grew by "
            f"{delta_moves} but {observed} element writes were observed"
        )
    delta_comparisons = after_stats.get("comparisons", 0) - before_stats.get(
        "comparisons", 0
    )
    if n > 1 and delta_comparisons < 1:
        raise SanitizerViolation(
            f"sorter {name!r} reported no comparisons while sorting "
            f"{n} elements"
        )


def install() -> None:
    """Route every :meth:`Sorter.sort` call through the sanitizer."""
    from repro.core import sorter

    sorter.install_sanitize_hook(run_sanitized)


def uninstall() -> None:
    """Remove the global sanitizer hook (regardless of ``REPRO_SANITIZE``)."""
    from repro.core import sorter

    sorter.uninstall_sanitize_hook()


class SanitizingSorter:
    """A sorter wrapper that sanitizes every top-level sort call.

    Duck-types the :class:`~repro.core.sorter.Sorter` interface (``sort``,
    ``timed_sort``, ``name``, ``stable``) around any inner sorter, so it can
    be dropped into the registry, the benchmark harness, or the storage
    engine unchanged.
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self.name = getattr(inner, "name", type(inner).__name__)
        self.stable = getattr(inner, "stable", False)

    def sort(self, timestamps, values=None, stats=None, *, series=None):
        # ``series`` is accepted for interface parity and deliberately
        # dropped: sanitized sorts always run the full algorithm with no
        # cross-call state, so every checked invocation is self-contained.
        from repro.core.instrumentation import SortStats
        from repro.errors import LengthMismatchError

        if stats is None:
            stats = SortStats()
        n = len(timestamps)
        if values is None:
            values = [None] * n
        elif len(values) != n:
            raise LengthMismatchError(n, len(values))
        if n > 1:
            run_sanitized(self.inner, timestamps, values, stats)
        return stats

    def timed_sort(
        self, timestamps, values=None, *, obs=None, site="direct", series=None
    ):
        from repro.bench.timing import Timer
        from repro.core.instrumentation import SortStats, TimedResult

        if obs is None:
            obs = getattr(self, "obs", None)
        stats = SortStats()
        if obs is None or not obs.enabled:
            with Timer() as timer:
                self.sort(timestamps, values, stats)
            return TimedResult(seconds=timer.seconds, stats=stats)
        from repro.obs.bridge import record_sort_stats

        points = len(timestamps)
        with obs.span("sort", sorter=self.name, site=site, points=points):
            with Timer(obs.clock) as timer:
                self.sort(timestamps, values, stats)
        record_sort_stats(
            obs, stats, sorter=self.name, site=site,
            seconds=timer.seconds, points=points,
        )
        return TimedResult(seconds=timer.seconds, stats=stats)

    def __getattr__(self, attr):
        # Forward sorter-specific attributes (e.g. BackwardSorter's
        # ``last_block_size``) so the wrapper is a drop-in replacement.
        return getattr(self.inner, attr)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<SanitizingSorter around {self.inner!r}>"
