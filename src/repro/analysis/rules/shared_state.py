"""Rule ``shared-state-escape``: shared mutable state must not leak unguarded.

Three shapes that are benign single-threaded and data races the moment a
second thread appears (exactly what the sharded-engine refactor will add):

1. **Module-level mutable globals** — a dict/list/set bound at module scope
   is process-wide shared state.  Constant-case names (``_FACTORIES``) are
   treated as frozen lookup tables and allowed *unless* the module itself
   mutates them; lowercase module globals and mutated tables are flagged.
   Functions that rebind a module global via ``global x`` are flagged too —
   that is a read-modify-write race (use ``threading.local`` or a lock).
2. **Mutable class attributes** — ``class C: cache = {}`` shares one dict
   across every instance (and thread).  Constant-case lookup tables and the
   ``GUARDED_BY`` declaration itself are exempt.
3. **Escaping owned collections** — a method that ``return``\\ s or
   ``yield``\\ s a ``self``-owned mutable collection (assigned a fresh
   dict/list/set in ``__init__``, or declared in ``GUARDED_BY``) hands the
   caller an unsynchronised alias into the object's guarded state.  Return
   a copy (``list(self._x)``) or waive with a documented reason.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import Finding, LintModule, Rule
from repro.analysis.rules.common import MUTATING_METHODS

#: Constructor names whose call result is a fresh mutable collection.
_MUTABLE_CTORS = frozenset(
    {"dict", "list", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
)

#: Class attributes that are declarations, not shared state.
_DECLARATION_ATTRS = frozenset({"GUARDED_BY"})


def _is_mutable_value(node: ast.expr | None) -> bool:
    """True when ``node`` evaluates to a fresh mutable collection."""
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CTORS
    return False


def _is_constant_case(name: str) -> bool:
    return name == name.upper() and any(c.isalpha() for c in name)


def _mutated_names(tree: ast.Module) -> set[str]:
    """Names the module stores through / calls mutating methods on, anywhere."""
    mutated: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
            targets = (
                node.targets
                if isinstance(node, (ast.Assign, ast.Delete))
                else [node.target]
            )
            for target in targets:
                inner = target
                while isinstance(inner, ast.Subscript):
                    inner = inner.value
                if isinstance(inner, ast.Name) and inner is not target:
                    mutated.add(inner.id)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATING_METHODS | {"setdefault", "update", "add"}:
                if isinstance(node.func.value, ast.Name):
                    mutated.add(node.func.value.id)
    return mutated


def _owned_mutable_attrs(cls: ast.ClassDef) -> dict[str, int]:
    """``self``-owned mutable collection attrs: ``{attr: declaring line}``."""
    # What __init__/__post_init__ visibly assigns: attr -> (line, is_mutable).
    assigned: dict[str, tuple[int, bool]] = {}
    for stmt in cls.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if stmt.name not in ("__init__", "__post_init__"):
            continue
        for node in ast.walk(stmt):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    assigned.setdefault(
                        target.attr, (node.lineno, _is_mutable_value(value))
                    )
    owned: dict[str, int] = {
        attr: line for attr, (line, mutable) in assigned.items() if mutable
    }
    for stmt in cls.body:
        # GUARDED_BY keys are owned state by declaration — unless __init__
        # visibly binds them to something immutable (an int counter, an enum
        # state field): guarded, but not an aliasable collection.
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if (
                isinstance(target, ast.Name)
                and target.id == "GUARDED_BY"
                and isinstance(stmt.value, ast.Dict)
            ):
                for key in stmt.value.keys:
                    if not isinstance(key, ast.Constant):
                        continue
                    attr = str(key.value)
                    if attr in assigned and not assigned[attr][1]:
                        continue
                    owned.setdefault(attr, stmt.lineno)
    return owned


class SharedStateEscapeRule(Rule):
    rule_id = "shared-state-escape"
    description = (
        "module-level mutable globals, mutable class attributes, and methods "
        "leaking self-owned collections are data races under threads"
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        yield from self._check_globals(module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class_attrs(module, node)
                yield from self._check_escapes(module, node)
        yield from self._check_global_rebinds(module)

    # -- module globals ----------------------------------------------------

    def _check_globals(self, module: LintModule) -> Iterator[Finding]:
        mutated = _mutated_names(module.tree)
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            if not _is_mutable_value(value):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name.startswith("__") and name.endswith("__"):
                    continue  # module metadata (__all__ and friends)
                if _is_constant_case(name) and name not in mutated:
                    continue  # frozen-by-convention lookup table
                reason = (
                    "is mutated in this module"
                    if name in mutated
                    else "is not constant-cased"
                )
                yield self.finding(
                    module,
                    stmt.lineno,
                    f"module-level mutable global {name!r} {reason}; "
                    "process-wide shared state needs a lock, threading.local, "
                    "or an immutable type (tuple/frozenset/MappingProxyType)",
                )

    def _check_global_rebinds(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Global):
                names = ", ".join(node.names)
                yield self.finding(
                    module,
                    node.lineno,
                    f"'global {names}' rebinds module state from a function — "
                    "a read-modify-write race under threads; use "
                    "threading.local, an instance attribute, or guard with a "
                    "lock and waive",
                )

    # -- class attributes --------------------------------------------------

    def _check_class_attrs(
        self, module: LintModule, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        for stmt in cls.body:
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            if not _is_mutable_value(value):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name in _DECLARATION_ATTRS or _is_constant_case(name):
                    continue
                yield self.finding(
                    module,
                    stmt.lineno,
                    f"mutable class attribute {cls.name}.{name} is shared by "
                    "every instance (and thread); initialise it per-instance "
                    "in __init__",
                )

    # -- escaping owned collections ----------------------------------------

    def _check_escapes(
        self, module: LintModule, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        owned = _owned_mutable_attrs(cls)
        if not owned:
            return
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(stmt):
                value: ast.expr | None
                if isinstance(node, ast.Return):
                    value, verb = node.value, "returns"
                elif isinstance(node, ast.Yield):
                    value, verb = node.value, "yields"
                else:
                    continue
                if (
                    isinstance(value, ast.Attribute)
                    and isinstance(value.value, ast.Name)
                    and value.value.id == "self"
                    and value.attr in owned
                ):
                    yield self.finding(
                        module,
                        node.lineno,
                        f"{cls.name}.{stmt.name} {verb} the internal mutable "
                        f"collection self.{value.attr} without copying; the "
                        "caller gets an unsynchronised alias — return "
                        f"list(...)/dict(...) of it instead",
                    )
