"""Rule ``wall-clock``: no clock reads inside hot-path modules.

Reliable timings come from two sanctioned places — :mod:`repro.bench.timing`,
which owns warmup, repetition, and dispersion statistics, and
:mod:`repro.obs.clock`, which owns the injectable clock itself.  A stray
``time.perf_counter()`` inside a sorter both biases measurements (the clock
read sits inside the measured region) and fragments the timing discipline
the benchmark harness depends on.  Hot-path modules therefore may not read
any wall clock; they time through :class:`repro.bench.timing.Timer` over an
injected :class:`repro.obs.clock.Clock` instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import Finding, LintModule, Rule
from repro.analysis.rules.common import is_hot_path

#: Names in the ``time`` module that read a clock.
_CLOCK_FUNCTIONS = frozenset(
    {"perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns", "time",
     "time_ns", "process_time", "process_time_ns"}
)

#: The modules allowed to read clocks: the timing harness and the clock
#: abstraction every span/timer reads through.
_TIMING_MODULES = frozenset({"repro.bench.timing", "repro.obs.clock"})

#: Kept for backwards compatibility with earlier imports of this module.
_TIMING_MODULE = "repro.bench.timing"


class WallClockRule(Rule):
    rule_id = "wall-clock"
    description = (
        "hot-path modules must not read wall clocks; only repro.bench.timing "
        "and repro.obs.clock may call time.perf_counter and friends"
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        if not is_hot_path(module) or module.name in _TIMING_MODULES:
            return
        direct_imports = _directly_imported_clocks(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _CLOCK_FUNCTIONS
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ):
                clock = f"time.{func.attr}"
            elif isinstance(func, ast.Name) and func.id in direct_imports:
                clock = func.id
            else:
                continue
            yield self.finding(
                module,
                node.lineno,
                f"{clock}() read in hot-path module; route timing through "
                f"{_TIMING_MODULE} instead",
            )


def _directly_imported_clocks(tree: ast.Module) -> set[str]:
    """Local names bound by ``from time import perf_counter``-style imports."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in _CLOCK_FUNCTIONS:
                    names.add(alias.asname or alias.name)
    return names
