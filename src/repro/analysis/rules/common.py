"""Shared AST helpers for the project lint rules.

The rules lean on two conventions of this codebase:

* **Parallel arrays** travel under paired names: ``ts``/``vs`` (and the
  short merge-run aliases ``at``/``av``, ``bt``/``bv``), or a shared prefix
  with ``_t``/``_v`` (``buf_t``/``buf_v``) or ``_ts``/``_vs``
  (``pile_ts``/``pile_vs``) suffixes.
* **Hot paths** live under ``repro/sorting/``, ``repro/core/``, and
  ``repro/iotdb/`` — the directories the write/flush/query pipeline and
  every sort call site execute.
"""

from __future__ import annotations

import ast
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.linter import LintModule

#: Directories whose modules count as hot paths.
HOT_PATH_DIRS = frozenset({"sorting", "core", "iotdb"})

#: Irregular timestamp-array → value-array name pairs.
_EXPLICIT_PAIRS = {"ts": "vs", "at": "av", "bt": "bv"}

#: list methods that mutate the receiver.
MUTATING_METHODS = frozenset(
    {"append", "extend", "insert", "pop", "remove", "clear", "sort", "reverse"}
)


def is_hot_path(module: LintModule) -> bool:
    """True when the module lives in a hot-path directory."""
    return any(part in HOT_PATH_DIRS for part in module.path.parts)


def paired_value_name(name: str) -> str | None:
    """The value-array name paired with timestamp-array ``name``, if any."""
    if name in _EXPLICIT_PAIRS:
        return _EXPLICIT_PAIRS[name]
    if name.endswith("_ts"):
        return name[:-3] + "_vs"
    if name.endswith("_t"):
        return name[:-2] + "_v"
    return None


def timestamp_name_for(name: str) -> str | None:
    """Inverse of :func:`paired_value_name`."""
    for t_name, v_name in _EXPLICIT_PAIRS.items():
        if name == v_name:
            return t_name
    if name.endswith("_vs"):
        return name[:-3] + "_ts"
    if name.endswith("_v"):
        return name[:-2] + "_t"
    return None


def is_paired_array_name(name: str) -> bool:
    """True when ``name`` belongs to either side of a parallel-array pair."""
    return paired_value_name(name) is not None or timestamp_name_for(name) is not None


@dataclass
class Scope:
    """One function (or the module body), excluding nested function bodies."""

    name: str
    node: ast.AST
    statements: list[ast.stmt]

    def walk(self) -> Iterator[ast.AST]:
        """Walk every node in this scope, skipping nested function scopes."""
        stack: list[ast.AST] = list(self.statements)
        while stack:
            node = stack.pop()
            yield node
            # A function definition is a statement of this scope, but its
            # body is a different scope — don't descend into it.
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))


def iter_scopes(tree: ast.Module) -> Iterator[Scope]:
    """Yield the module scope and every (possibly nested) function scope."""
    yield Scope(name="<module>", node=tree, statements=list(tree.body))
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield Scope(name=node.name, node=node, statements=list(node.body))


def subscript_root_name(node: ast.AST) -> str | None:
    """The root ``Name`` under a (possibly chained) subscript, else None."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


@dataclass
class ArrayMutations:
    """Per-name record of how a scope mutates its lists."""

    #: name -> multiset of unparsed index expressions stored through.
    store_indexes: dict[str, Counter] = field(default_factory=dict)
    #: name -> multiset of mutating method names called on it.
    method_calls: dict[str, Counter] = field(default_factory=dict)
    #: name -> first line a mutation was seen on.
    first_line: dict[str, int] = field(default_factory=dict)

    def _note_line(self, name: str, line: int) -> None:
        if name not in self.first_line or line < self.first_line[name]:
            self.first_line[name] = line

    def record_store(self, name: str, index_src: str, line: int) -> None:
        self.store_indexes.setdefault(name, Counter())[index_src] += 1
        self._note_line(name, line)

    def record_call(self, name: str, method: str, line: int) -> None:
        self.method_calls.setdefault(name, Counter())[method] += 1
        self._note_line(name, line)

    def mutated_names(self) -> set[str]:
        return set(self.store_indexes) | set(self.method_calls)


def _record_target(target: ast.AST, mutations: ArrayMutations) -> None:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _record_target(element, mutations)
    elif isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
        mutations.record_store(
            target.value.id, ast.unparse(target.slice), target.lineno
        )


def collect_array_mutations(scope: Scope) -> ArrayMutations:
    """Record subscript stores and mutating method calls in ``scope``."""
    mutations = ArrayMutations()
    for node in scope.walk():
        if isinstance(node, ast.Assign):
            for target in node.targets:
                _record_target(target, mutations)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            _record_target(node.target, mutations)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                _record_target(target, mutations)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATING_METHODS:
                root = subscript_root_name(node.func.value)
                if root is not None:
                    mutations.record_call(root, node.func.attr, node.lineno)
    return mutations


def scope_has_counter_update(scope: Scope, counter: str) -> bool:
    """True when the scope updates a stats counter named ``counter``.

    Accepts the two accounting idioms used throughout the codebase: a direct
    augmented assignment on an attribute (``stats.moves += n``,
    ``self.stats.moves += 1``) and a local tally later folded in
    (``moves += 1`` … ``stats.moves += moves``) — the local counter's name
    must contain the counter word (``moves``, ``comparisons``).
    """
    stem = counter.rstrip("s")
    for node in scope.walk():
        if not isinstance(node, ast.AugAssign):
            continue
        target = node.target
        if isinstance(target, ast.Attribute) and target.attr == counter:
            return True
        if isinstance(target, ast.Name) and stem in target.id:
            return True
    return False


def compares_paired_subscript(node: ast.Compare) -> bool:
    """True when any comparison operand subscripts a parallel-array name."""
    for operand in [node.left, *node.comparators]:
        for sub in ast.walk(operand):
            if isinstance(sub, ast.Subscript):
                root = subscript_root_name(sub)
                if root is not None and is_paired_array_name(root):
                    return True
    return False
