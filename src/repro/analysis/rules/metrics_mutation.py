"""Rule ``no-direct-metrics-mutation``: engine metrics mutate via the registry.

Engine metrics live in the metrics registry
(:class:`repro.obs.MetricsRegistry`); code that writes
``engine.metrics.points_written += 1`` (the removed ``EngineMetrics``
façade's attribute API) bypasses the instruments, so the numbers silently
diverge from what the exporters publish.  All mutation goes through
registry instruments (``registry.counter(...).inc()``) or the engine's own
pre-resolved children.

The rule flags, in any linted module:

* assignments / augmented assignments whose target is
  ``<expr>.metrics.<field>``;
* mutating list-method calls on such a field
  (``engine.metrics.flush_reports.append(...)``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import Finding, LintModule, Rule
from repro.analysis.rules.common import MUTATING_METHODS


def _metrics_field(node: ast.AST) -> str | None:
    """``"<field>"`` when ``node`` is an ``<expr>.metrics.<field>`` access."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Attribute)
        and node.value.attr == "metrics"
    ):
        return node.attr
    return None


class MetricsMutationRule(Rule):
    rule_id = "no-direct-metrics-mutation"
    description = (
        "engine.metrics.<field> must not be mutated directly; update the "
        "instruments in the metrics registry instead"
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    field = _metrics_field(target)
                    if field is not None:
                        yield self.finding(
                            module,
                            node.lineno,
                            f"direct write to .metrics.{field}; increment the "
                            "registry instrument instead (the EngineMetrics "
                            "attribute API has been removed)",
                        )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr not in MUTATING_METHODS:
                    continue
                field = _metrics_field(node.func.value)
                if field is not None:
                    yield self.finding(
                        module,
                        node.lineno,
                        f".metrics.{field}.{node.func.attr}(...) mutates "
                        "engine metrics directly; record through the registry "
                        "(or StorageEngine.flush_reports) instead",
                    )
