"""Registry of the project lint rules.

Rules are instantiated fresh per :func:`all_rules` call so they carry no
state between linter runs.  ``repro-analyze --rules`` selects a subset by
ID via :func:`get_rules`.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.analysis.linter import Rule
from repro.analysis.rules.guarded_by import GuardedByRule
from repro.analysis.rules.lazy_imports import LazyImportCycleRule
from repro.analysis.rules.lock_order import LockOrderRule
from repro.analysis.rules.metrics_mutation import MetricsMutationRule
from repro.analysis.rules.parallel_arrays import ParallelArrayRule
from repro.analysis.rules.quadratic_ops import QuadraticListOpRule
from repro.analysis.rules.shared_state import SharedStateEscapeRule
from repro.analysis.rules.stats_accounting import StatsAccountingRule
from repro.analysis.rules.wall_clock import WallClockRule
from repro.errors import InvalidParameterError

_RULE_FACTORIES: dict[str, Callable[[], Rule]] = {
    ParallelArrayRule.rule_id: ParallelArrayRule,
    StatsAccountingRule.rule_id: StatsAccountingRule,
    LazyImportCycleRule.rule_id: LazyImportCycleRule,
    WallClockRule.rule_id: WallClockRule,
    QuadraticListOpRule.rule_id: QuadraticListOpRule,
    MetricsMutationRule.rule_id: MetricsMutationRule,
    GuardedByRule.rule_id: GuardedByRule,
    LockOrderRule.rule_id: LockOrderRule,
    SharedStateEscapeRule.rule_id: SharedStateEscapeRule,
}


def available_rules() -> tuple[str, ...]:
    """IDs of every registered rule, sorted alphabetically."""
    return tuple(sorted(_RULE_FACTORIES))


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule."""
    return [_RULE_FACTORIES[rule_id]() for rule_id in available_rules()]


def get_rules(rule_ids: Sequence[str]) -> list[Rule]:
    """Fresh instances of the named rules.

    Raises:
        InvalidParameterError: for an unknown rule ID.
    """
    rules: list[Rule] = []
    for rule_id in rule_ids:
        try:
            rules.append(_RULE_FACTORIES[rule_id]())
        except KeyError:
            raise InvalidParameterError(
                f"unknown rule {rule_id!r}; available: {', '.join(available_rules())}"
            ) from None
    return rules
