"""Rule ``lazy-import-cycle``: import cycles are only legal when lazy.

``repro.core.backward_sort`` needs the block sorters that live in
``repro.sorting``, while ``repro.sorting``'s registry imports the core
sorter interface back — a genuine dependency cycle.  The documented pattern
keeps it harmless: the *core → sorting* direction is imported lazily inside
the function that needs it, so no cycle exists at module import time.

This rule rebuilds the module-level import graph over the scanned project
(only imports that are direct statements of the module body count — imports
inside functions are the sanctioned lazy pattern and contribute no edge) and
reports every import statement that participates in a cycle.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.analysis.linter import Finding, LintModule, Rule


class LazyImportCycleRule(Rule):
    rule_id = "lazy-import-cycle"
    description = (
        "module-level import cycles are forbidden; close a cycle only via a "
        "function-local (lazy) import"
    )

    def check_project(self, modules: Sequence[LintModule]) -> Iterator[Finding]:
        known = {module.name: module for module in modules}
        # name -> list of (imported module name, lineno)
        edges: dict[str, list[tuple[str, int]]] = {
            module.name: list(_top_level_imports(module, known)) for module in modules
        }
        graph = {
            name: {target for target, _ in targets} for name, targets in edges.items()
        }
        for name, targets in sorted(edges.items()):
            for target, lineno in targets:
                cycle = _find_path(graph, target, name)
                if cycle is not None:
                    chain = " -> ".join([name, *cycle])
                    yield self.finding(
                        known[name],
                        lineno,
                        f"module-level import of {target!r} closes the cycle "
                        f"{chain}; move it inside the function that needs it "
                        "(the documented lazy-import pattern)",
                    )


def _top_level_imports(
    module: LintModule, known: dict[str, LintModule]
) -> Iterator[tuple[str, int]]:
    """Project-internal imports that execute at module import time.

    Edges onto the module itself or one of its ancestor packages are
    dropped: ancestors are implicitly (partially) imported before the module
    body runs, so they cannot introduce a *new* cycle.
    """
    ancestors = set()
    parts = module.name.split(".")
    for end in range(1, len(parts) + 1):
        ancestors.add(".".join(parts[:end]))

    def emit(target: str | None, lineno: int) -> Iterator[tuple[str, int]]:
        if target is not None and target not in ancestors:
            yield target, lineno

    for node in module.tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield from emit(_resolve(alias.name, known), node.lineno)
        elif isinstance(node, ast.ImportFrom):
            base = _absolute_base(node, module)
            if base is None:
                continue
            # ``from pkg import submodule`` — prefer the submodule target;
            # fall back to the base module for ``from pkg import name``.
            for alias in node.names:
                target = _resolve(f"{base}.{alias.name}", known)
                if target is not None:
                    yield from emit(target, node.lineno)
                else:
                    yield from emit(_resolve(base, known), node.lineno)


def _absolute_base(node: ast.ImportFrom, module: LintModule) -> str | None:
    """Absolute dotted base of a ``from … import`` statement."""
    if node.level == 0:
        return node.module
    package_parts = module.name.split(".")[: -node.level]
    if not package_parts and not node.module:
        return None
    if node.module:
        package_parts.append(node.module)
    return ".".join(package_parts) if package_parts else None


def _resolve(name: str, known: dict[str, LintModule]) -> str | None:
    """Map an imported dotted name onto a scanned module, if it is one."""
    if name in known:
        return name
    # ``import repro.core.sorter`` resolves even when only the package
    # __init__ is scanned; prefer the deepest scanned prefix.
    parts = name.split(".")
    for end in range(len(parts) - 1, 0, -1):
        prefix = ".".join(parts[:end])
        if prefix in known:
            return prefix
    return None


def _find_path(
    graph: dict[str, set[str]], start: str, goal: str
) -> list[str] | None:
    """Shortest path ``[start, …, goal]`` over the import graph, if any."""
    if start == goal:
        return [start]
    frontier = [[start]]
    visited = {start}
    while frontier:
        next_frontier: list[list[str]] = []
        for path in frontier:
            for neighbor in sorted(graph.get(path[-1], ())):
                if neighbor == goal:
                    return path + [goal]
                if neighbor not in visited:
                    visited.add(neighbor)
                    next_frontier.append(path + [neighbor])
        frontier = next_frontier
    return None
