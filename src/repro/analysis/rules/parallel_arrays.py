"""Rule ``parallel-arrays``: timestamps and values must move in lockstep.

Every sorter rearranges two parallel arrays — the timestamps (sort key) and
the values (payload).  A refactor that shifts ``ts[i]`` without shifting
``vs[i]`` under the same index silently desynchronises the pair while still
producing sorted timestamps, so no ordinary sortedness test catches it.

The rule checks, per function scope in hot-path modules, that for every
recognised name pair (``ts``/``vs``, ``buf_t``/``buf_v``, …):

* the multiset of subscript-store index expressions on the timestamp array
  equals the one on the value array (``ts[j + 1] = …`` requires a matching
  ``vs[j + 1] = …``), and
* the multiset of mutating method calls (``append``, ``insert``, ``pop``, …)
  on both arrays is the same.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.linter import Finding, LintModule, Rule
from repro.analysis.rules.common import (
    collect_array_mutations,
    is_hot_path,
    iter_scopes,
    paired_value_name,
    timestamp_name_for,
)


class ParallelArrayRule(Rule):
    rule_id = "parallel-arrays"
    description = (
        "a function mutating ts[i] must mutate vs[i] under the same index "
        "expression (and mirror append/insert/pop calls)"
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        if not is_hot_path(module):
            return
        for scope in iter_scopes(module.tree):
            mutations = collect_array_mutations(scope)
            pairs: set[tuple[str, str]] = set()
            for name in mutations.mutated_names():
                value_name = paired_value_name(name)
                if value_name is not None:
                    pairs.add((name, value_name))
                    continue
                t_name = timestamp_name_for(name)
                if t_name is not None:
                    pairs.add((t_name, name))
            for t_name, v_name in sorted(pairs):
                line = mutations.first_line.get(
                    t_name, mutations.first_line.get(v_name, 1)
                )
                t_stores = mutations.store_indexes.get(t_name, {})
                v_stores = mutations.store_indexes.get(v_name, {})
                if t_stores != v_stores:
                    yield self.finding(
                        module,
                        line,
                        f"in {scope.name!r}: subscript stores on {t_name!r} "
                        f"({_fmt(t_stores)}) are not mirrored on {v_name!r} "
                        f"({_fmt(v_stores)})",
                    )
                t_calls = mutations.method_calls.get(t_name, {})
                v_calls = mutations.method_calls.get(v_name, {})
                if t_calls != v_calls:
                    yield self.finding(
                        module,
                        line,
                        f"in {scope.name!r}: mutating calls on {t_name!r} "
                        f"({_fmt(t_calls)}) are not mirrored on {v_name!r} "
                        f"({_fmt(v_calls)})",
                    )


def _fmt(counter) -> str:
    if not counter:
        return "none"
    return ", ".join(f"{key} x{count}" for key, count in sorted(counter.items()))
