"""Rule ``lock-order``: the static lock-acquisition graph must be acyclic.

A deadlock needs a cycle in the order locks are acquired: thread 1 takes A
then B, thread 2 takes B then A.  The runtime layer
(:class:`repro.analysis.concurrency.InstrumentedLock`) catches the orders a
test actually executes; this rule catches the ones the *source* admits.  It
scans every function in the project for syntactically nested ``with``
statements whose context expressions look like locks (the expression text
mentions ``lock``/``mutex``), labels them — ``self._lock`` inside class
``MemTable`` becomes ``MemTable._lock``, a module-level lock becomes
``<module>.<name>`` — records an edge outer → inner for every nesting, and
fails when the project-wide graph has a cycle.

The granularity is the lock *class*, matching the runtime graph: a
consistent global order must hold between, say, every engine lock and every
memtable lock, regardless of instance.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.analysis.linter import Finding, LintModule, Rule

#: Substrings that mark a with-context expression as a lock acquisition.
_LOCK_WORDS = ("lock", "mutex")


def _looks_like_lock(expr: ast.expr) -> bool:
    text = ast.unparse(expr).lower()
    return any(word in text for word in _LOCK_WORDS)


def _lock_label(expr: ast.expr, module: LintModule, class_name: str | None) -> str:
    """Stable lock-class label for a with-context expression."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and class_name is not None
    ):
        return f"{class_name}.{expr.attr}"
    if isinstance(expr, ast.Name):
        return f"{module.name}.{expr.id}"
    return f"{module.name}.{ast.unparse(expr)}"


@dataclass(frozen=True)
class _LockEdge:
    """One observed outer → inner nesting of lock acquisitions."""

    source: str
    target: str
    path: str
    line: int


class LockOrderRule(Rule):
    rule_id = "lock-order"
    description = (
        "nested 'with <lock>:' statements across the project must form an "
        "acyclic acquisition graph (a cycle is a latent ABBA deadlock)"
    )

    def check_project(self, modules: Sequence[LintModule]) -> Iterator[Finding]:
        edges: dict[tuple[str, str], _LockEdge] = {}
        for module in modules:
            for edge in self._module_edges(module):
                edges.setdefault((edge.source, edge.target), edge)

        adjacency: dict[str, list[str]] = {}
        for source, target in edges:
            adjacency.setdefault(source, []).append(target)

        reported: set[frozenset[str]] = set()
        for (source, target), edge in sorted(edges.items()):
            path = self._find_path(adjacency, target, source)
            if path is None:
                continue
            cycle_nodes = frozenset(path) | {source, target}
            if cycle_nodes in reported:
                continue
            reported.add(cycle_nodes)
            cycle = " -> ".join([source, target] + path[1:] + [source])
            back = edges.get((path[-2] if len(path) > 1 else target, source))
            where = f" (opposite order at {back.path}:{back.line})" if back else ""
            yield Finding(
                rule_id=self.rule_id,
                path=edge.path,
                line=edge.line,
                message=(
                    f"lock-order cycle {cycle}: acquiring {target!r} while "
                    f"holding {source!r} here, but the reverse order also "
                    f"exists{where}"
                ),
            )

    # -- edge collection ---------------------------------------------------

    def _module_edges(self, module: LintModule) -> Iterator[_LockEdge]:
        yield from self._walk(module, module.tree.body, class_name=None, stack=[])

    def _walk(
        self,
        module: LintModule,
        stmts: Sequence[ast.stmt],
        class_name: str | None,
        stack: list[str],
    ) -> Iterator[_LockEdge]:
        for stmt in stmts:
            if isinstance(stmt, ast.ClassDef):
                yield from self._walk(module, stmt.body, stmt.name, [])
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Each function body is a fresh acquisition context: nesting
                # across a call boundary is the runtime graph's job.
                yield from self._walk(module, stmt.body, class_name, [])
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                labels = [
                    _lock_label(item.context_expr, module, class_name)
                    for item in stmt.items
                    if _looks_like_lock(item.context_expr)
                ]
                for label in labels:
                    for outer in stack:
                        if outer != label:
                            yield _LockEdge(
                                outer, label, str(module.path), stmt.lineno
                            )
                yield from self._walk(
                    module, stmt.body, class_name, stack + labels
                )
            else:
                yield from self._walk_nested(module, stmt, class_name, stack)

    def _walk_nested(
        self,
        module: LintModule,
        stmt: ast.stmt,
        class_name: str | None,
        stack: list[str],
    ) -> Iterator[_LockEdge]:
        """Recurse into compound statements (if/for/try…) preserving stack."""
        for field_value in ast.iter_child_nodes(stmt):
            if isinstance(field_value, ast.stmt):
                yield from self._walk(module, [field_value], class_name, stack)

    # -- cycle detection ---------------------------------------------------

    @staticmethod
    def _find_path(
        adjacency: dict[str, list[str]], start: str, goal: str
    ) -> list[str] | None:
        """Node path from ``start`` to ``goal`` (inclusive), if any."""
        frontier: list[tuple[str, list[str]]] = [(start, [start])]
        visited = {start}
        while frontier:
            node, path = frontier.pop()
            if node == goal:
                return path
            for neighbour in adjacency.get(node, ()):
                if neighbour not in visited:
                    visited.add(neighbour)
                    frontier.append((neighbour, path + [neighbour]))
        return None
