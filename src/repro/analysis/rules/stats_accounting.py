"""Rule ``stats-accounting``: every move and comparison must be counted.

The paper's move-count figures (Example 3, Propositions 5-6) are reproduced
from the ``SortStats`` counters, so a sorter that moves elements without
bumping ``stats.moves`` — or compares timestamps without bumping
``stats.comparisons`` — quietly corrupts every downstream figure while all
correctness tests keep passing.

Per function scope in hot-path modules:

* a scope that mutates a parallel array (subscript store or mutating method
  call on a paired name) must update a ``moves`` counter, and
* a scope that compares subscripted parallel-array elements must update a
  ``comparisons`` counter.

Both accounting idioms used in the codebase are accepted: direct
(``stats.moves += n``) and local-tally (``moves += 1`` folded into
``stats.moves`` at the end).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import Finding, LintModule, Rule
from repro.analysis.rules.common import (
    collect_array_mutations,
    compares_paired_subscript,
    is_hot_path,
    is_paired_array_name,
    iter_scopes,
    scope_has_counter_update,
)


class StatsAccountingRule(Rule):
    rule_id = "stats-accounting"
    description = (
        "every swap/shift of a parallel array pair must be paired with a "
        "stats.moves update, and every key comparison with stats.comparisons"
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        if not is_hot_path(module):
            return
        for scope in iter_scopes(module.tree):
            if scope.name == "<module>":
                continue
            mutations = collect_array_mutations(scope)
            mutated = [
                name for name in mutations.mutated_names() if is_paired_array_name(name)
            ]
            if mutated and not scope_has_counter_update(scope, "moves"):
                line = min(mutations.first_line[name] for name in mutated)
                yield self.finding(
                    module,
                    line,
                    f"in {scope.name!r}: parallel arrays "
                    f"({', '.join(sorted(mutated))}) are mutated but no "
                    "moves counter is updated in this function",
                )
            compare_line = self._first_uncounted_compare(scope)
            if compare_line is not None and not scope_has_counter_update(
                scope, "comparisons"
            ):
                yield self.finding(
                    module,
                    compare_line,
                    f"in {scope.name!r}: parallel-array elements are compared "
                    "but no comparisons counter is updated in this function",
                )

    @staticmethod
    def _first_uncounted_compare(scope) -> int | None:
        for node in scope.walk():
            if isinstance(node, ast.Compare) and compares_paired_subscript(node):
                return node.lineno
        return None
