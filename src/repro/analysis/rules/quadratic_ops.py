"""Rule ``quadratic-list-op``: no accidentally quadratic list idioms in loops.

``list.insert(0, …)`` and ``list.pop(0)`` shift every element on each call;
membership tests against a plain list scan it linearly.  Any of these inside
a loop in a hot-path module turns an intended O(n) or O(n log n) pass into
O(n²) on adversarial input — exactly the kind of regression a perf-focused
reproduction must not merge silently.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import Finding, LintModule, Rule
from repro.analysis.rules.common import is_hot_path, iter_scopes, subscript_root_name


class QuadraticListOpRule(Rule):
    rule_id = "quadratic-list-op"
    description = (
        "list.insert(0, …), list.pop(0), and membership tests against plain "
        "lists are O(n) per call and forbidden inside hot-path loops"
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        if not is_hot_path(module):
            return
        for scope in iter_scopes(module.tree):
            list_names = _locally_bound_lists(scope)
            for loop in scope.walk():
                if not isinstance(loop, (ast.For, ast.While)):
                    continue
                for node in ast.walk(loop):
                    if node is loop:
                        continue
                    yield from self._check_node(module, scope, node, list_names)

    def _check_node(
        self, module: LintModule, scope, node: ast.AST, list_names: set[str]
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            method = node.func.attr
            receiver = subscript_root_name(node.func.value)
            if (
                method in {"insert", "pop"}
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == 0
                and receiver is not None
            ):
                yield self.finding(
                    module,
                    node.lineno,
                    f"in {scope.name!r}: {receiver}.{method}(0, …) inside a "
                    "loop shifts the whole list per call (O(n^2) total); "
                    "restructure to append/pop at the end",
                )
        elif isinstance(node, ast.Compare):
            for op, comparator in zip(node.ops, node.comparators):
                if (
                    isinstance(op, (ast.In, ast.NotIn))
                    and isinstance(comparator, ast.Name)
                    and comparator.id in list_names
                ):
                    yield self.finding(
                        module,
                        node.lineno,
                        f"in {scope.name!r}: membership test against list "
                        f"{comparator.id!r} inside a loop scans it linearly; "
                        "use a set",
                    )


def _locally_bound_lists(scope) -> set[str]:
    """Names assigned a list literal / ``list()`` call / list comp in scope."""
    names: set[str] = set()
    for node in scope.walk():
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        if not _is_list_value(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _is_list_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.ListComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "list"
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        # ``[None] * n`` and friends.
        return _is_list_value(node.left) or _is_list_value(node.right)
    return False
