"""Rule ``guarded-by``: declared shared attributes are accessed under their lock.

The concurrency annotation vocabulary (shared with the runtime layer in
:mod:`repro.analysis.concurrency`):

* a class declares its lock discipline with a ``GUARDED_BY`` class
  attribute — ``GUARDED_BY = {"_chunks": "_lock"}`` reads "``self._chunks``
  may only be touched while ``self._lock`` is held";
* or, per attribute, with a trailing pragma on the initialising assignment —
  ``self._next_id = 1  # repro: guarded_by(_lock)``;
* a helper that is *always* called with the lock already held is annotated
  ``@holds("_lock")`` instead of re-acquiring.

The rule walks every method of a declaring class and flags each read or
write of a guarded attribute that is not syntactically inside a
``with self.<lock>:`` block (or an ``@holds``-annotated method).
``__init__`` / ``__new__`` / ``__post_init__`` are exempt: the object is
not yet shared while it is being constructed.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.linter import Finding, LintModule, Rule

#: Attribute-level pragma: ``self._x = ...  # repro: guarded_by(_lock)``.
_GUARDED_PRAGMA = re.compile(r"#\s*repro:\s*guarded_by\(\s*(\w+)\s*\)")

#: Methods where the instance is still private to the constructing thread.
_CONSTRUCTORS = frozenset({"__init__", "__new__", "__post_init__", "__del__"})


def _class_guard_map(cls: ast.ClassDef, module: LintModule) -> dict[str, str]:
    """``{attr: lock_attr}`` from GUARDED_BY and guarded_by() pragmas."""
    guards: dict[str, str] = {}
    for stmt in cls.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == "GUARDED_BY"
                and isinstance(value, ast.Dict)
            ):
                for key, val in zip(value.keys, value.values):
                    if isinstance(key, ast.Constant) and isinstance(
                        val, ast.Constant
                    ):
                        guards[str(key.value)] = str(val.value)
    lines = module.source.splitlines()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        if node.lineno > len(lines):
            continue
        match = _GUARDED_PRAGMA.search(lines[node.lineno - 1])
        if match is None:
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                guards[target.attr] = match.group(1)
    return guards


def _held_via_decorators(method: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Lock attrs a ``@holds("_lock")`` decorator declares as already held."""
    held: set[str] = set()
    for decorator in method.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name != "holds":
            continue
        for arg in decorator.args:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                held.add(arg.value)
    return held


def _with_lock_attrs(node: ast.With | ast.AsyncWith) -> set[str]:
    """Lock attributes acquired by ``with self.<attr>:`` items."""
    attrs: set[str] = set()
    for item in node.items:
        expr = item.context_expr
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            attrs.add(expr.attr)
    return attrs


class GuardedByRule(Rule):
    rule_id = "guarded-by"
    description = (
        "attributes declared in GUARDED_BY (or via '# repro: guarded_by(lock)') "
        "must be accessed inside 'with self.<lock>:' or an @holds method"
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: LintModule, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        guards = _class_guard_map(cls, module)
        if not guards:
            return
        lock_attrs = set(guards.values())
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name in _CONSTRUCTORS:
                continue
            held = _held_via_decorators(stmt)
            for child in stmt.body:
                yield from self._check_node(
                    module, cls, guards, lock_attrs, child, held
                )

    def _check_node(
        self,
        module: LintModule,
        cls: ast.ClassDef,
        guards: dict[str, str],
        lock_attrs: set[str],
        node: ast.AST,
        held: set[str],
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested scope may run after the with-block exits; its lock
            # state is out of static reach — the runtime proxies cover it.
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                yield from self._check_node(
                    module, cls, guards, lock_attrs, item.context_expr, held
                )
            inner = held | (_with_lock_attrs(node) & lock_attrs)
            for child in node.body:
                yield from self._check_node(
                    module, cls, guards, lock_attrs, child, inner
                )
            return
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in guards
            and guards[node.attr] not in held
        ):
            access = "write to" if isinstance(
                node.ctx, (ast.Store, ast.Del)
            ) else "read of"
            yield self.finding(
                module,
                node.lineno,
                f"{access} guarded attribute {cls.name}.{node.attr} outside "
                f"'with self.{guards[node.attr]}:' (declare @holds"
                f"({guards[node.attr]!r}) if the caller always holds it)",
            )
        for child in ast.iter_child_nodes(node):
            yield from self._check_node(
                module, cls, guards, lock_attrs, child, held
            )
