"""AST lint framework: module loading, rule protocol, pragma suppression.

The linter is deliberately small: a :class:`LintModule` is one parsed source
file, a :class:`Rule` inspects modules (or the whole project at once, for
cross-module rules such as import-cycle detection) and yields
:class:`Finding` objects.  :func:`run_linter` glues the two together and
drops findings suppressed by an inline ``# repro: allow(<rule-id>)`` pragma
on the offending line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.errors import InvalidParameterError

#: Inline suppression pragma: ``# repro: allow(rule-a, rule-b)``.
_ALLOW_PRAGMA = re.compile(r"#\s*repro:\s*allow\(\s*([-\w\s,]+?)\s*\)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule_id: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule_id}] {self.message}"

    def as_dict(self) -> dict[str, str | int]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass
class LintModule:
    """One parsed source file plus the metadata rules need.

    Attributes:
        path: filesystem path of the file.
        name: best-effort dotted module name (walking up while ``__init__.py``
            parents exist), e.g. ``"repro.core.sorter"``.
        source: raw text.
        tree: the parsed :class:`ast.Module`.
        allowed: per-line rule suppressions from ``# repro: allow(...)``.
    """

    path: Path
    name: str
    source: str
    tree: ast.Module
    allowed: dict[int, set[str]] = field(default_factory=dict)

    def is_suppressed(self, finding: Finding) -> bool:
        rules = self.allowed.get(finding.line)
        return bool(rules) and (finding.rule_id in rules or "*" in rules)

    def path_parts(self) -> tuple[str, ...]:
        return self.path.parts


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id`` / ``description`` and override one (or both)
    of :meth:`check_module` and :meth:`check_project`.
    """

    rule_id: str = "abstract"
    description: str = ""

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        return iter(())

    def check_project(self, modules: Sequence[LintModule]) -> Iterator[Finding]:
        return iter(())

    def finding(self, module: LintModule, line: int, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id, path=str(module.path), line=line, message=message
        )


def dotted_module_name(path: Path) -> str:
    """Dotted name of ``path`` relative to its topmost package directory."""
    path = path.resolve()
    parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if parts[0] == "__init__":
        parts = parts[1:] or [path.parent.name]
    return ".".join(reversed(parts))


def _parse_allow_pragmas(source: str) -> dict[int, set[str]]:
    allowed: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_PRAGMA.search(line)
        if match:
            rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
            if rules:
                allowed[lineno] = rules
    return allowed


def load_module(path: Path) -> LintModule:
    """Parse one source file into a :class:`LintModule`.

    Raises:
        SyntaxError: when the file does not parse; callers that want a
            finding instead use :func:`run_linter`.
    """
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return LintModule(
        path=path,
        name=dotted_module_name(path),
        source=source,
        tree=tree,
        allowed=_parse_allow_pragmas(source),
    )


def iter_source_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    """Expand files/directories into a deterministic list of ``*.py`` files."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise InvalidParameterError(f"no such file or directory: {path}")
        candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def load_modules(paths: Iterable[Path | str]) -> tuple[list[LintModule], list[Finding]]:
    """Load every source file; unparseable files become ``syntax-error`` findings."""
    modules: list[LintModule] = []
    errors: list[Finding] = []
    for path in iter_source_files(paths):
        try:
            modules.append(load_module(path))
        except SyntaxError as exc:
            errors.append(
                Finding(
                    rule_id="syntax-error",
                    path=str(path),
                    line=exc.lineno or 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
    return modules, errors


def run_linter(
    paths: Iterable[Path | str],
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Run ``rules`` (default: all registered) over ``paths``.

    Returns findings sorted by (path, line, rule), with pragma-suppressed
    findings removed.  Syntax errors are reported as findings rather than
    raised, so CI sees broken files instead of a traceback.
    """
    if rules is None:
        from repro.analysis.rules import all_rules

        rules = all_rules()
    modules, findings = load_modules(paths)
    by_path = {str(module.path): module for module in modules}
    for rule in rules:
        for module in modules:
            findings.extend(rule.check_module(module))
        findings.extend(rule.check_project(modules))
    kept = [
        finding
        for finding in findings
        if finding.path not in by_path or not by_path[finding.path].is_suppressed(finding)
    ]
    kept.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return kept
