"""Runtime concurrency sanitizer: lock-order tracking and guarded-state proxies.

The static rules in :mod:`repro.analysis.rules` (``guarded-by``,
``lock-order``, ``shared-state-escape``) check the *source* for concurrency
discipline; this module checks the *process*.  Two pieces, both
dependency-free:

* :class:`InstrumentedLock` — a drop-in ``with``-able lock that records, per
  thread, which locks are held when another is acquired, building a
  process-wide lock-*order* graph keyed by lock name.  The first acquisition
  that closes a cycle in that graph raises :class:`LockOrderViolation`
  carrying both acquisition stacks — the classic ABBA deadlock is reported
  deterministically on the second ordering, whether or not the schedule
  would actually have deadlocked.
* :class:`SharedStateSanitizer` — wraps the mutable collections a class
  declares in its ``GUARDED_BY`` mapping (``{"_chunks": "_lock"}``) in
  access-checking dict/list/set proxies that assert the owning
  :class:`InstrumentedLock` is held by the current thread on every read and
  write.  An unguarded access raises :class:`GuardViolation` — a
  dependency-free TSan-lite for the attributes the sharded-engine work will
  share between threads.

Activation: set ``REPRO_CONCURRENCY=1`` (read once at import; tests flip it
with :func:`set_enforcement`).  When disabled, :func:`create_lock` returns a
plain ``threading.RLock`` and :func:`apply_guards` / :func:`holds` are
no-ops, so production code pays one flag check per guarded call.
"""

from __future__ import annotations

import os
import threading
import traceback
from typing import Iterable, Iterator

from repro.errors import ConcurrencyError, GuardViolation, LockOrderViolation

#: Environment variable that turns runtime concurrency checking on.
CONCURRENCY_ENV = "REPRO_CONCURRENCY"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def concurrency_enabled() -> bool:
    """True when ``REPRO_CONCURRENCY`` requests runtime checking."""
    return os.environ.get(CONCURRENCY_ENV, "").strip().lower() in _TRUTHY


#: Cached enforcement flag; env is read once so the hot-path check is a
#: module attribute load.  Tests toggle it via :func:`set_enforcement`.
_enforced = concurrency_enabled()


def enforcement_enabled() -> bool:
    """The cached enforcement flag the guarded call sites check."""
    return _enforced


def set_enforcement(enabled: bool) -> bool:
    """Override the cached ``REPRO_CONCURRENCY`` flag; returns the old value.

    Locks and guards are chosen at object construction, so flipping this
    only affects objects created afterwards.
    """
    global _enforced  # repro: allow(shared-state-escape)
    previous = _enforced
    _enforced = bool(enabled)
    return previous


# -- the process-wide lock-order graph ---------------------------------------


class _HeldStacks(threading.local):
    """Per-thread stack of currently held :class:`InstrumentedLock`\\ s."""

    def __init__(self) -> None:
        self.stack: list[InstrumentedLock] = []


_held = _HeldStacks()


class _Edge:
    """First-seen acquisition of ``target`` while holding ``source``."""

    __slots__ = ("source", "target", "thread", "stack")

    def __init__(self, source: str, target: str, thread: str, stack: str) -> None:
        self.source = source
        self.target = target
        self.thread = thread
        self.stack = stack


class LockOrderGraph:
    """Directed graph of observed lock-acquisition orders, keyed by name.

    One process-wide instance (:data:`LOCK_ORDER_GRAPH`) collects edges from
    every :class:`InstrumentedLock`; its own bookkeeping is guarded by a
    plain ``threading.Lock`` (deliberately *not* instrumented — the graph
    cannot watch itself).
    """

    def __init__(self) -> None:
        # Guarded by self._mutex below; the graph is the one object that
        # cannot use InstrumentedLock for its own state.
        self._mutex = threading.Lock()
        self._edges: dict[tuple[str, str], _Edge] = {}

    def reset(self) -> None:
        """Forget every recorded edge (test isolation)."""
        with self._mutex:
            self._edges.clear()

    def edges(self) -> list[tuple[str, str]]:
        """Snapshot of the recorded (source, target) name pairs."""
        with self._mutex:
            return sorted(self._edges)

    def _path(self, start: str, goal: str) -> list[_Edge] | None:
        """A directed edge path start → … → goal, if one exists (DFS)."""
        by_source: dict[str, list[_Edge]] = {}
        for edge in self._edges.values():
            by_source.setdefault(edge.source, []).append(edge)
        stack: list[tuple[str, list[_Edge]]] = [(start, [])]
        visited = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for edge in by_source.get(node, ()):
                if edge.target not in visited:
                    visited.add(edge.target)
                    stack.append((edge.target, path + [edge]))
        return None

    def note_acquisition(
        self, held: Iterable["InstrumentedLock"], acquiring: "InstrumentedLock"
    ) -> None:
        """Record ``held → acquiring`` edges; raise on a closed cycle."""
        candidates = [lock for lock in held if lock.name != acquiring.name]
        if not candidates:
            return
        thread = threading.current_thread().name
        stack_text: str | None = None
        with self._mutex:
            for lock in candidates:
                key = (lock.name, acquiring.name)
                if key in self._edges:
                    continue
                if stack_text is None:
                    # Stack capture is expensive; defer it until an edge is
                    # genuinely new (steady state repeats known edges).
                    stack_text = "".join(traceback.format_stack(limit=12)[:-2])
                # Does the reverse order already exist (directly or
                # transitively)?  Then this acquisition closes a cycle.
                reverse = self._path(acquiring.name, lock.name)
                if reverse is not None:
                    first = reverse[0]
                    cycle = " -> ".join(
                        [acquiring.name]
                        + [edge.target for edge in reverse]
                        + [acquiring.name]
                    )
                    raise LockOrderViolation(
                        f"lock-order cycle: acquiring {acquiring.name!r} while "
                        f"holding {lock.name!r}, but the opposite order "
                        f"{cycle} was already recorded.\n"
                        f"--- first ordering (thread {first.thread!r}, "
                        f"{first.source!r} -> {first.target!r}) ---\n"
                        f"{first.stack}"
                        f"--- this ordering (thread {thread!r}, "
                        f"{lock.name!r} -> {acquiring.name!r}) ---\n"
                        f"{stack_text}"
                    )
                self._edges[key] = _Edge(
                    lock.name, acquiring.name, thread, stack_text
                )


#: The process-wide lock-order graph every InstrumentedLock reports into.
LOCK_ORDER_GRAPH = LockOrderGraph()


def reset_lock_order_graph() -> None:
    """Clear the process-wide graph (call between independent tests)."""
    LOCK_ORDER_GRAPH.reset()


class InstrumentedLock:
    """A named re-entrant lock that feeds the process lock-order graph.

    Drop-in for ``threading.RLock`` in ``with`` statements.  ``name``
    identifies the lock *class* in the order graph (every ``MemTable``
    instance shares the name ``"MemTable._lock"``), matching the static
    ``lock-order`` rule's granularity: a consistent global order must hold
    between lock classes, not just instances.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.RLock()
        self._owner: int | None = None
        self._count = 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        me = threading.get_ident()
        if self._owner != me:
            # A fresh (non-re-entrant) acquisition: record ordering edges
            # against every lock this thread already holds *before*
            # blocking, so the violation fires instead of the deadlock.
            LOCK_ORDER_GRAPH.note_acquisition(list(_held.stack), self)
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._owner = me
            self._count += 1
            _held.stack.append(self)
        return acquired

    def release(self) -> None:
        if self._owner != threading.get_ident() or self._count <= 0:
            raise ConcurrencyError(
                f"lock {self.name!r} released by a thread that does not hold it"
            )
        self._count -= 1
        if self._count == 0:
            self._owner = None
        for index in range(len(_held.stack) - 1, -1, -1):
            if _held.stack[index] is self:
                del _held.stack[index]
                break
        self._lock.release()

    def __enter__(self) -> "InstrumentedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def held_by_current_thread(self) -> bool:
        """True when the calling thread currently holds this lock."""
        return self._owner == threading.get_ident()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<InstrumentedLock {self.name!r} depth={self._count}>"


def create_lock(name: str):
    """The lock factory every guarded class uses.

    Returns an :class:`InstrumentedLock` when runtime checking is on, a
    plain ``threading.RLock`` otherwise — so production pays no per-acquire
    graph bookkeeping.
    """
    if _enforced:
        return InstrumentedLock(name)
    return threading.RLock()


# -- @holds: annotated lock expectations --------------------------------------


def holds(*lock_attrs: str):
    """Declare that a method runs with ``self.<lock_attr>`` already held.

    The static ``guarded-by`` rule treats the decorated method's body as
    holding the named locks; at runtime (``REPRO_CONCURRENCY=1``) entry
    asserts the expectation, so a refactor that starts calling the helper
    without the lock fails immediately instead of racing silently.
    """

    def decorate(fn):
        import functools

        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            if _enforced:
                for attr in lock_attrs:
                    lock = getattr(self, attr, None)
                    if isinstance(lock, InstrumentedLock) and not (
                        lock.held_by_current_thread()
                    ):
                        raise GuardViolation(
                            f"{type(self).__name__}.{fn.__name__} requires "
                            f"{attr} to be held (declared via @holds)"
                        )
            return fn(self, *args, **kwargs)

        wrapper.__repro_holds__ = lock_attrs
        return wrapper

    return decorate


# -- guarded-attribute proxies ------------------------------------------------


def _assert_held(lock: InstrumentedLock, label: str) -> None:
    if not lock.held_by_current_thread():
        raise GuardViolation(
            f"unguarded access to {label}: {lock.name!r} is not held by "
            f"thread {threading.current_thread().name!r}"
        )


def _checking(name):
    """Build a method that asserts the guard lock before delegating."""

    def method(self, *args, **kwargs):
        _assert_held(self.__guard_lock__, self.__guard_label__)
        return getattr(self.__guard_base__, name)(self, *args, **kwargs)

    method.__name__ = name
    return method


_DICT_METHODS = (
    "__getitem__", "__setitem__", "__delitem__", "__contains__", "__iter__",
    "__len__", "get", "setdefault", "pop", "popitem", "update", "clear",
    "keys", "values", "items",
)
_LIST_METHODS = (
    "__getitem__", "__setitem__", "__delitem__", "__contains__", "__iter__",
    "__len__", "append", "extend", "insert", "pop", "remove", "clear",
    "sort", "reverse", "index", "count",
)
_SET_METHODS = (
    "__contains__", "__iter__", "__len__", "add", "discard", "remove",
    "pop", "clear", "update",
)


def _build_proxy(base: type, methods: tuple[str, ...]) -> type:
    namespace = {
        "__guard_base__": base,
        "__slots__": ("__guard_lock__", "__guard_label__"),
    }
    for name in methods:
        namespace[name] = _checking(name)
    return type(f"Guarded{base.__name__.capitalize()}", (base,), namespace)


_GuardedDict = _build_proxy(dict, _DICT_METHODS)
_GuardedList = _build_proxy(list, _LIST_METHODS)
_GuardedSet = _build_proxy(set, _SET_METHODS)

_PROXY_TYPES = {dict: _GuardedDict, list: _GuardedList, set: _GuardedSet}


class SharedStateSanitizer:
    """Wraps a class's declared guarded attributes in checking proxies.

    Reads the instance's ``GUARDED_BY`` class mapping
    (``{"<attr>": "<lock-attr>"}``) and replaces each dict/list/set valued
    attribute with a proxy asserting the owning :class:`InstrumentedLock`
    is held on every access.  Non-collection attributes (ints, enums) are
    covered by the static rule and by ``@holds`` only.  Idempotent:
    re-applying after an attribute was rebound re-wraps only raw values.
    """

    @staticmethod
    def instrument(obj) -> object:
        spec: dict[str, str] = getattr(type(obj), "GUARDED_BY", None) or {}
        label_prefix = type(obj).__name__
        for attr, lock_attr in spec.items():
            lock = getattr(obj, lock_attr, None)
            if not isinstance(lock, InstrumentedLock):
                continue
            value = getattr(obj, attr, None)
            proxy_type = _PROXY_TYPES.get(type(value))
            if proxy_type is None:
                continue
            proxy = proxy_type(value)
            proxy.__guard_lock__ = lock
            proxy.__guard_label__ = f"{label_prefix}.{attr}"
            setattr(obj, attr, proxy)
        return obj


def apply_guards(obj) -> object:
    """Instrument ``obj``'s ``GUARDED_BY`` attributes when checking is on.

    The call every guarded class makes at the end of ``__init__`` (and
    again after rebinding a guarded attribute).  A no-op unless
    ``REPRO_CONCURRENCY=1`` was set when the process started (or a test
    called :func:`set_enforcement`).
    """
    if not _enforced:
        return obj
    return SharedStateSanitizer.instrument(obj)


def iter_guarded_attrs(cls: type) -> Iterator[tuple[str, str]]:
    """(attribute, lock-attribute) pairs a class declares via ``GUARDED_BY``."""
    yield from (getattr(cls, "GUARDED_BY", None) or {}).items()
