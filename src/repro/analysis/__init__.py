"""Machine-checked guardrails for the Backward-Sort reproduction.

The correctness of this codebase rests on invariants the type system cannot
see: every sorter permutes two parallel arrays in lockstep, every move and
comparison is accounted in :class:`~repro.core.instrumentation.SortStats`,
and the hot paths stay free of wall-clock reads and accidentally quadratic
list operations.  This package enforces them on two layers:

* **Static** — :mod:`repro.analysis.linter` runs AST-based project rules
  (see :mod:`repro.analysis.rules`) over the source tree; the
  ``repro-analyze`` console script (:mod:`repro.analysis.cli`) wires it
  into CI.
* **Dynamic** — :mod:`repro.analysis.sanitizer` wraps any sorter and
  asserts post-conditions (sorted output, pair permutation, stats
  consistent with the observed mutation count).  Setting ``REPRO_SANITIZE=1``
  turns it on for every :meth:`repro.core.sorter.Sorter.sort` call, so the
  whole test suite can run sanitized.

Findings are suppressed line-by-line with ``# repro: allow(<rule-id>)``.
"""

from __future__ import annotations

from repro.analysis.concurrency import (
    InstrumentedLock,
    SharedStateSanitizer,
    apply_guards,
    concurrency_enabled,
    create_lock,
    holds,
    reset_lock_order_graph,
)
from repro.analysis.linter import Finding, LintModule, Rule, load_modules, run_linter
from repro.analysis.sanitizer import (
    SanitizerViolation,
    SanitizingSorter,
    TracingList,
    run_sanitized,
    sanitize_enabled,
)
from repro.errors import ConcurrencyError, GuardViolation, LockOrderViolation

__all__ = [
    "ConcurrencyError",
    "Finding",
    "GuardViolation",
    "InstrumentedLock",
    "LintModule",
    "LockOrderViolation",
    "Rule",
    "SanitizerViolation",
    "SanitizingSorter",
    "SharedStateSanitizer",
    "TracingList",
    "apply_guards",
    "concurrency_enabled",
    "create_lock",
    "holds",
    "load_modules",
    "reset_lock_order_graph",
    "run_linter",
    "run_sanitized",
    "sanitize_enabled",
]
