"""Relative-link checker for the repo's Markdown docs.

The docs cross-reference each other and the source tree heavily
(README → docs/STORAGE.md → src/repro/iotdb/...); a rename silently
strands those links.  This checker walks every tracked ``*.md`` file,
extracts Markdown links and resolves the *relative* ones against the
linking file's directory — external URLs and pure anchors are ignored —
and reports every target that does not exist.

CLI::

    python -m repro.analysis.doclinks [ROOT]

Exit status 0 when every relative link resolves, 1 otherwise (one line
per broken link).  CI runs this as the docs-link step;
``tests/analysis/test_doclinks.py`` runs it over the repo so a broken
link fails the plain test suite too.
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass
from pathlib import Path

#: Inline Markdown links ``[text](target)``; images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Schemes (and scheme-like prefixes) that are not filesystem targets.
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://", "data:")

#: Directories never scanned for Markdown sources.
_SKIP_DIRS = {".git", ".hypothesis", "__pycache__", "node_modules", ".pytest_cache"}


@dataclass(frozen=True)
class BrokenLink:
    """One relative link whose target does not exist."""

    source: Path
    line: int
    target: str

    def __str__(self) -> str:
        return f"{self.source}:{self.line}: broken link -> {self.target}"


def markdown_files(root: Path) -> list[Path]:
    """Every ``*.md`` under ``root``, skipping VCS/cache directories."""
    return sorted(
        path
        for path in Path(root).rglob("*.md")
        if not (_SKIP_DIRS & set(path.relative_to(root).parts[:-1]))
    )


def extract_links(text: str) -> list[tuple[int, str]]:
    """``(line_number, target)`` for every inline link, 1-based lines."""
    links: list[tuple[int, str]] = []
    for number, line in enumerate(text.splitlines(), start=1):
        for match in _LINK.finditer(line):
            links.append((number, match.group(1)))
    return links


def check_file(path: Path, root: Path) -> list[BrokenLink]:
    """Broken relative links of one Markdown file."""
    broken: list[BrokenLink] = []
    text = path.read_text(encoding="utf-8")
    for line, raw_target in extract_links(text):
        target = raw_target.strip("<>")
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        if target.startswith("/"):
            resolved = Path(root) / target.lstrip("/")
        else:
            resolved = path.parent / target
        if not resolved.exists():
            broken.append(
                BrokenLink(source=path.relative_to(root), line=line, target=raw_target)
            )
    return broken


def check_tree(root: Path) -> list[BrokenLink]:
    """Broken relative links across every Markdown file under ``root``."""
    root = Path(root)
    broken: list[BrokenLink] = []
    for path in markdown_files(root):
        broken.extend(check_file(path, root))
    return broken


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    root = Path(args[0]) if args else Path.cwd()
    if not root.is_dir():
        print(f"doclinks: no such directory: {root}", file=sys.stderr)
        return 2
    broken = check_tree(root)
    for link in broken:
        print(link, file=sys.stderr)
    checked = len(markdown_files(root))
    if broken:
        print(
            f"doclinks: {len(broken)} broken link(s) across {checked} files",
            file=sys.stderr,
        )
        return 1
    print(f"doclinks: every relative link in {checked} Markdown files resolves")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
