"""``python -m repro.analysis`` — alias for the ``repro-analyze`` script."""

import sys

from repro.analysis.cli import main

sys.exit(main())
