"""Load a user's own CSV trace as an arrival stream.

The paper's real datasets were CSV exports (CitiBike trip histories); this
loader brings any ``timestamp,value`` CSV into the library's
:class:`~repro.workloads.generator.ArrivalStream` form so every metric,
sorter, and experiment applies to it.  Rows are taken in file order — the
file order *is* the arrival order; the timestamps carry the disorder.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.generator import ArrivalStream


def stream_from_rows(
    rows: Iterable[tuple[int, float]], name: str = "custom"
) -> ArrivalStream:
    """Build an :class:`ArrivalStream` from in-memory (timestamp, value) rows.

    Unlike the synthetic generators there is no known delay vector, so
    ``delays`` is left empty and ``generation_times`` is the sorted
    timestamp set — sufficient for every metric that works from the arrival
    order alone.
    """
    timestamps: list[int] = []
    values: list[float] = []
    for row_number, (t, v) in enumerate(rows, start=1):
        if not isinstance(t, int) or isinstance(t, bool):
            raise WorkloadError(f"row {row_number}: timestamp must be int, got {t!r}")
        timestamps.append(t)
        values.append(float(v))
    if not timestamps:
        raise WorkloadError("no rows provided")
    return ArrivalStream(
        timestamps=timestamps,
        values=values,
        delays=np.array([]),
        generation_times=np.array(sorted(timestamps)),
        name=name,
    )


def load_csv(
    path: str | Path,
    time_column: str = "timestamp",
    value_column: str = "value",
    name: str | None = None,
) -> ArrivalStream:
    """Read a headered CSV of timestamped points, in file (= arrival) order.

    Args:
        path: the CSV file.
        time_column: header of the integer timestamp column.
        value_column: header of the numeric value column.
        name: stream label; defaults to the file stem.

    Raises:
        WorkloadError: missing file, missing columns, or malformed rows.
    """
    path = Path(path)
    if not path.exists():
        raise WorkloadError(f"no such file: {path}")
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or time_column not in reader.fieldnames:
            raise WorkloadError(
                f"column {time_column!r} not found in {path.name} "
                f"(has: {reader.fieldnames})"
            )
        if value_column not in reader.fieldnames:
            raise WorkloadError(
                f"column {value_column!r} not found in {path.name} "
                f"(has: {reader.fieldnames})"
            )

        def _rows():
            for line_number, row in enumerate(reader, start=2):
                try:
                    yield int(row[time_column]), float(row[value_column])
                except (TypeError, ValueError) as exc:
                    raise WorkloadError(
                        f"{path.name}:{line_number}: bad row {row!r} ({exc})"
                    ) from exc

        return stream_from_rows(_rows(), name=name if name is not None else path.stem)
