"""The evaluation's datasets: synthetic families and simulated real-world ones.

The paper evaluates on two synthetic families — AbsNormal [3] and
LogNormal [5], [13] — and two real-world datasets, CitiBike trip histories
and the Samsung IoTBDS-2017 trace.  The real datasets are not shipped with
the paper and are no longer fully retrievable, so this module *simulates*
them: each simulator draws delays from a mixture calibrated to reproduce the
interval-inversion-ratio profile reported in Figure 8(a), which is the only
property of the datasets the experiments consume (see DESIGN.md §4 for the
substitution argument):

* ``citibike-201808`` / ``citibike-201902`` — heavy-tailed (LogNormal-core)
  delays; α_L stays above 1e-3 out to intervals of ~2^16 (scaled with n).
* ``samsung-d5`` / ``samsung-s10`` — light, bounded delays; α_L hits zero by
  L = 2^5.

All factories return :class:`~repro.workloads.generator.ArrivalStream`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.theory.distributions import (
    AbsNormalDelay,
    ConstantDelay,
    DelayDistribution,
    ExponentialDelay,
    LogNormalDelay,
    MixtureDelay,
)
from repro.workloads.generator import ArrivalStream, TimeSeriesGenerator


def abs_normal(n: int, mu: float = 0.0, sigma: float = 1.0, seed: int = 0) -> ArrivalStream:
    """AbsNormal(µ, σ) synthetic dataset: delays ``|N(µ, σ²)|`` (Figure 9)."""
    gen = TimeSeriesGenerator(
        AbsNormalDelay(mu, sigma), name=f"absnormal({mu:g},{sigma:g})"
    )
    return gen.generate(n, seed)


def log_normal(n: int, mu: float = 0.0, sigma: float = 1.0, seed: int = 0) -> ArrivalStream:
    """LogNormal(µ, σ) synthetic dataset (Figure 10)."""
    gen = TimeSeriesGenerator(
        LogNormalDelay(mu, sigma), name=f"lognormal({mu:g},{sigma:g})"
    )
    return gen.generate(n, seed)


def exponential(n: int, lam: float = 1.0, seed: int = 0) -> ArrivalStream:
    """Exponential(λ) dataset — the theory-validation workload (Example 6)."""
    gen = TimeSeriesGenerator(ExponentialDelay(lam), name=f"exponential({lam:g})")
    return gen.generate(n, seed)


def _citibike_delay(month: str, n: int) -> DelayDistribution:
    """Heavy-tailed mixture whose IIR truncation scales like Figure 8(a).

    The paper measured α_L > 1e-3 out to L ≈ 2^16 on arrays of 10^6 points;
    the tail scale here is proportional to ``n`` so the *relative* truncation
    point (≈ n/16) is preserved at any experiment size.  201808 (summer,
    busier) is more disordered than 201902.
    """
    tail_scale = max(n / 16.0, 64.0)
    if month == "201808":
        on_time_weight, burst_sigma = 0.55, 1.6
    elif month == "201902":
        on_time_weight, burst_sigma = 0.75, 1.4
    else:
        raise WorkloadError(f"unknown CitiBike month {month!r}; use 201808 or 201902")
    burst_mu = float(np.log(tail_scale / 8.0))
    return MixtureDelay(
        [
            (on_time_weight, AbsNormalDelay(0.0, 2.0)),
            (1.0 - on_time_weight, LogNormalDelay(burst_mu, burst_sigma)),
        ]
    )


def citibike_like(n: int, month: str = "201808", seed: int = 0) -> ArrivalStream:
    """Simulated CitiBike trip-history arrival stream (heavy disorder)."""
    gen = TimeSeriesGenerator(_citibike_delay(month, n), name=f"citibike-{month}")
    return gen.generate(n, seed)


def _samsung_delay(device: str) -> DelayDistribution:
    """Light bounded-delay mixture: α_L reaches 0 by L = 2^5 (Figure 8(a))."""
    if device == "d5":
        return MixtureDelay(
            [
                (0.90, ConstantDelay(0.0)),
                (0.10, AbsNormalDelay(0.0, 1.2)),
            ]
        )
    if device == "s10":
        return MixtureDelay(
            [
                (0.80, ConstantDelay(0.0)),
                (0.20, AbsNormalDelay(1.0, 2.0)),
            ]
        )
    raise WorkloadError(f"unknown Samsung device {device!r}; use d5 or s10")


def samsung_like(n: int, device: str = "d5", seed: int = 0) -> ArrivalStream:
    """Simulated Samsung IoTBDS-2017 arrival stream (mild disorder)."""
    gen = TimeSeriesGenerator(_samsung_delay(device), name=f"samsung-{device}")
    return gen.generate(n, seed)


#: The four "real-world" dataset labels of Figures 8 and 11.
REAL_WORLD_DATASETS = ("citibike-201808", "citibike-201902", "samsung-d5", "samsung-s10")


def load_dataset(name: str, n: int, seed: int = 0, **params) -> ArrivalStream:
    """Factory dispatch by dataset label.

    Recognised names: ``absnormal``, ``lognormal``, ``exponential``,
    ``citibike-201808``, ``citibike-201902``, ``samsung-d5``, ``samsung-s10``.
    Synthetic families accept ``mu``/``sigma`` (or ``lam``) keyword
    parameters.
    """
    if name == "absnormal":
        return abs_normal(n, seed=seed, **params)
    if name == "lognormal":
        return log_normal(n, seed=seed, **params)
    if name == "exponential":
        return exponential(n, seed=seed, **params)
    if name.startswith("citibike-"):
        return citibike_like(n, month=name.split("-", 1)[1], seed=seed)
    if name.startswith("samsung-"):
        return samsung_like(n, device=name.split("-", 1)[1], seed=seed)
    raise WorkloadError(f"unknown dataset {name!r}")
