"""Delay-only arrival-stream generation (Definition 5's data model).

Points are generated at equally spaced times ``t_i = i · interval`` (the
paper normalises the spacing to 1) and each point arrives at
``t_i + τ_i · interval`` with ``τ_i`` drawn i.i.d. from a
:class:`~repro.theory.distributions.DelayDistribution`.  The *arrival
stream* is the sequence of points in arrival-time order — the order in which
a TVList would ingest them — carrying their *generation* timestamps, which is
what must be sorted.

Ties in arrival time are broken by generation order (stable argsort),
matching a FIFO network queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import WorkloadError
from repro.metrics.delay_stats import check_delay_only
from repro.theory.distributions import DelayDistribution


def sine_values(generation_times: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Default payload: a daily-period sine with 5 % Gaussian noise.

    A smooth signal (rather than white noise) matters for the downstream
    forecasting experiment (Figure 22), where disorder must visibly corrupt
    an otherwise learnable pattern.
    """
    period = 240.0  # a few hours at 1-minute spacing: several cycles even
    # in small experiment runs, so the forecaster always sees repetition.
    base = np.sin(2.0 * np.pi * generation_times / period)
    return base + 0.05 * rng.standard_normal(generation_times.size)


@dataclass
class ArrivalStream:
    """An out-of-order time series as it reaches the database.

    Attributes:
        timestamps: generation timestamps in *arrival* order — the array the
            sorters operate on.
        values: payloads aligned with ``timestamps``.
        delays: per-point delay ``τ_i`` in *generation* order.
        generation_times: the equally spaced generation timestamps.
        name: dataset label used in experiment tables.
    """

    timestamps: list[int]
    values: list[float]
    delays: np.ndarray
    generation_times: np.ndarray
    name: str = "stream"
    _summary_cache: dict | None = field(default=None, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.timestamps)

    def sort_input(self) -> tuple[list[int], list[float]]:
        """Fresh copies of (timestamps, values) safe to sort in place."""
        return list(self.timestamps), list(self.values)

    def disorder_summary(self) -> dict:
        """Cached :func:`repro.metrics.disorder_summary` of the stream."""
        if self._summary_cache is None:
            from repro.metrics import disorder_summary

            self._summary_cache = disorder_summary(self.timestamps)
        return self._summary_cache


class TimeSeriesGenerator:
    """Generates :class:`ArrivalStream` instances for one delay model.

    Args:
        delay: the i.i.d. delay distribution ``D``.
        interval: generation spacing; timestamps are integer multiples of it.
        value_fn: ``(generation_times, rng) -> values`` payload function;
            defaults to :func:`sine_values`.
        name: label attached to generated streams.
    """

    def __init__(
        self,
        delay: DelayDistribution,
        interval: int = 1,
        value_fn: Callable[[np.ndarray, np.random.Generator], np.ndarray] | None = None,
        name: str | None = None,
    ) -> None:
        if interval < 1:
            raise WorkloadError(f"interval must be >= 1, got {interval}")
        self.delay = delay
        self.interval = interval
        self.value_fn = value_fn if value_fn is not None else sine_values
        self.name = name if name is not None else delay.name

    def generate(self, n: int, seed: int = 0) -> ArrivalStream:
        """Generate ``n`` points and return them in arrival order.

        Raises:
            WorkloadError: if the delay model produced a negative delay —
                a violation of the delay-only property (§II-B2).
        """
        if n < 0:
            raise WorkloadError(f"n must be >= 0, got {n}")
        rng = np.random.default_rng(seed)
        generation_times = np.arange(n, dtype=np.int64) * self.interval
        delays = self.delay.sample(n, rng)
        if not check_delay_only(generation_times, delays):
            raise WorkloadError(
                f"delay distribution {self.delay.name} produced negative delays"
            )
        arrival_times = generation_times + delays * self.interval
        order = np.argsort(arrival_times, kind="stable")
        values = self.value_fn(generation_times, rng)
        return ArrivalStream(
            timestamps=[int(t) for t in generation_times[order]],
            values=[float(v) for v in values[order]],
            delays=delays,
            generation_times=generation_times,
            name=self.name,
        )


def stream_from_delays(
    delays: np.ndarray,
    interval: int = 1,
    values: np.ndarray | None = None,
    name: str = "stream",
) -> ArrivalStream:
    """Build an :class:`ArrivalStream` from an explicit delay vector.

    Used by tests to construct exact scenarios (e.g. the Figure 2 merge
    example) and by the dataset simulators when delays come from a mixture
    sampled outside the generator.
    """
    delays = np.asarray(delays, dtype=float)
    if np.any(delays < 0):
        raise WorkloadError("delays must be non-negative (delay-only)")
    n = delays.size
    generation_times = np.arange(n, dtype=np.int64) * interval
    arrival_times = generation_times + delays * interval
    order = np.argsort(arrival_times, kind="stable")
    if values is None:
        values = np.arange(n, dtype=float)
    elif len(values) != n:
        raise WorkloadError("values length must match delays length")
    return ArrivalStream(
        timestamps=[int(t) for t in generation_times[order]],
        values=[float(v) for v in np.asarray(values)[order]],
        delays=delays,
        generation_times=generation_times,
        name=name,
    )
