"""Out-of-order workload generation: delay models → arrival streams."""

from repro.workloads.bursts import outage_stream
from repro.workloads.csv_loader import load_csv, stream_from_rows
from repro.workloads.datasets import (
    REAL_WORLD_DATASETS,
    abs_normal,
    citibike_like,
    exponential,
    load_dataset,
    log_normal,
    samsung_like,
)
from repro.workloads.generator import (
    ArrivalStream,
    TimeSeriesGenerator,
    sine_values,
    stream_from_delays,
)

__all__ = [
    "ArrivalStream",
    "REAL_WORLD_DATASETS",
    "TimeSeriesGenerator",
    "abs_normal",
    "citibike_like",
    "exponential",
    "load_csv",
    "load_dataset",
    "log_normal",
    "outage_stream",
    "samsung_like",
    "sine_values",
    "stream_from_delays",
    "stream_from_rows",
]
