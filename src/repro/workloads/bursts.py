"""Bursty disorder: network-outage arrival patterns (paper §II's failure case).

The i.i.d.-delay model (Definition 5) captures jitter, but the paper's §II
also names *system failure* as a disorder source: during an outage nothing
arrives, and when connectivity returns, the buffered backlog arrives in one
burst — after points generated during the outage's tail have already landed.
This is still strictly delay-only, but the delays are *correlated*, which
stresses Backward-Sort differently: disorder concentrates in dense pockets
instead of spreading thinly.

:func:`outage_stream` models it directly: points generated inside an outage
window are held until the window ends (plus a small flush jitter), all other
points arrive with light i.i.d. jitter.  Robustness tests assert that the
sorters and the block-size search handle this correlated regime.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.theory.distributions import DelayDistribution, ExponentialDelay
from repro.workloads.generator import ArrivalStream, stream_from_delays


def outage_stream(
    n: int,
    outage_every: int = 1_000,
    outage_length: int = 100,
    base_delay: DelayDistribution | None = None,
    seed: int = 0,
    name: str = "outage",
) -> ArrivalStream:
    """An arrival stream with periodic buffered-backlog bursts.

    Args:
        n: number of points.
        outage_every: generation-time period between outage starts.
        outage_length: how many ticks each outage lasts; points generated in
            ``[k·outage_every, k·outage_every + outage_length)`` are delayed
            until the outage ends.
        base_delay: light i.i.d. jitter applied to every point (default
            ``Exp(2)``, mean half a tick).
        seed: rng seed.
    """
    if n < 0:
        raise WorkloadError(f"n must be >= 0, got {n}")
    if outage_every < 1 or outage_length < 1:
        raise WorkloadError("outage_every and outage_length must be >= 1")
    if outage_length >= outage_every:
        raise WorkloadError("outage_length must be shorter than outage_every")
    rng = np.random.default_rng(seed)
    base = base_delay if base_delay is not None else ExponentialDelay(2.0)
    delays = base.sample(n, rng)
    times = np.arange(n)
    phase = times % outage_every
    in_outage = phase < outage_length
    # A buffered point is released when the outage ends, plus its jitter:
    # delay = (time until outage end) + jitter.
    delays = np.where(in_outage, (outage_length - phase) + delays, delays)
    return stream_from_delays(delays, name=f"{name}(every={outage_every},len={outage_length})")
