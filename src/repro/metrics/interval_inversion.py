"""Interval inversions and the interval inversion ratio (Definitions 3-4).

``α_L`` is the paper's central disorder measure: the fraction of index pairs
at distance exactly ``L`` that are inverted, ``α_L = C / (N - L)``.  Unlike
the aggregate ``Inv``, it resolves disorder *by distance*, which is what lets
Backward-Sort pick a block size at which cross-block movement nearly
vanishes.  Proposition 2 ties its expectation to the delay-difference tail:
``E(α_L) = F̄_Δτ(L)``.

The exact ratio is computed with NumPy when available (a single vectorised
comparison), with a pure-Python fallback for exotic element types.  The
down-sampled *empirical* estimator ``α̃`` used inside the sorter lives in
:mod:`repro.core.block_size` and is re-exported here for discoverability.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.block_size import empirical_interval_inversion_ratio
from repro.errors import InvalidParameterError

__all__ = [
    "count_interval_inversions",
    "empirical_interval_inversion_ratio",
    "interval_inversion_ratio",
    "iir_profile",
    "iir_truncation_point",
]


def count_interval_inversions(ts: Sequence, interval: int) -> int:
    """Number of pairs ``(i, i + L)`` with ``t_i > t_{i+L}`` (Definition 3)."""
    if interval < 1:
        raise InvalidParameterError(f"interval must be >= 1, got {interval}")
    n = len(ts)
    if interval >= n:
        return 0
    arr = np.asarray(ts)
    if arr.dtype != object:
        return int(np.count_nonzero(arr[:-interval] > arr[interval:]))
    return sum(1 for i in range(n - interval) if ts[i] > ts[i + interval])


def interval_inversion_ratio(ts: Sequence, interval: int) -> float:
    """``α_L = C / (N - L)`` (Definition 4); 0.0 when ``L >= N``."""
    n = len(ts)
    if interval >= n:
        return 0.0
    return count_interval_inversions(ts, interval) / (n - interval)


def iir_profile(
    ts: Sequence, intervals: Sequence[int] | None = None
) -> list[tuple[int, float]]:
    """``(L, α_L)`` at the given intervals (default: powers of two up to N).

    This is the measurement behind Figure 8(a): the profile of α against
    exponentially spaced intervals characterises how far delays reach, and
    its truncation point predicts the optimal block size.
    """
    n = len(ts)
    if intervals is None:
        intervals = []
        size = 1
        while size < n:
            intervals.append(size)
            size *= 2
    return [(interval, interval_inversion_ratio(ts, interval)) for interval in intervals]


def iir_truncation_point(
    ts: Sequence, threshold: float = 1e-3, intervals: Sequence[int] | None = None
) -> int:
    """Smallest profiled interval where ``α_L`` drops below ``threshold``.

    The paper observes (§VI-B) that "the optimal block size roughly
    corresponds to the interval that the inversion ratio is truncated at some
    value between 1e-2 and 1e-3".  Returns ``len(ts)`` when the profile never
    drops below the threshold.
    """
    for interval, alpha in iir_profile(ts, intervals):
        if alpha < threshold:
            return interval
    return len(ts)
