"""Exact inversion counting (Definition 2) and a Fenwick-tree helper.

An *inversion* is a pair ``(i, j)`` with ``i < j`` and ``t_i > t_j``; the
total count ``Inv(X)`` is the classic adaptive-sort disorder measure (it is
exactly the number of element shifts straight insertion sort performs).  Two
counters are provided: a merge-based one (simple, stable accounting) and a
Fenwick-tree one (reused by the overhang statistics in
:mod:`repro.metrics.delay_stats`).
"""

from __future__ import annotations

from typing import Sequence


class FenwickTree:
    """Binary indexed tree over ``size`` slots supporting prefix sums."""

    def __init__(self, size: int) -> None:
        self._size = size
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int = 1) -> None:
        """Add ``delta`` at ``index`` (0-based)."""
        i = index + 1
        tree = self._tree
        while i <= self._size:
            tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of slots ``0..index`` inclusive (0-based); 0 if index < 0."""
        total = 0
        i = index + 1
        tree = self._tree
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total

    def total(self) -> int:
        """Sum over all slots."""
        return self.prefix_sum(self._size - 1)


def _dense_ranks(ts: Sequence) -> list[int]:
    """Map values to dense ranks in ``[0, #distinct)``, preserving order."""
    sorted_unique = sorted(set(ts))
    rank = {t: r for r, t in enumerate(sorted_unique)}
    return [rank[t] for t in ts]


def count_inversions(ts: Sequence) -> int:
    """Exact ``Inv(X)`` via a Fenwick tree; O(n log n) time, O(n) space.

    Ties do not count as inversions (``t_i > t_j`` is strict, matching
    Definition 2).
    """
    n = len(ts)
    if n < 2:
        return 0
    ranks = _dense_ranks(ts)
    tree = FenwickTree(max(ranks) + 1)
    inversions = 0
    seen = 0
    for r in ranks:
        # Elements already seen with a strictly greater rank invert with r.
        inversions += seen - tree.prefix_sum(r)
        tree.add(r)
        seen += 1
    return inversions


def count_inversions_merge(ts: Sequence) -> int:
    """Exact ``Inv(X)`` via merge counting — an independent cross-check.

    Used by the test suite to validate :func:`count_inversions`; both must
    agree on every input.
    """
    arr = list(ts)
    buf = [None] * len(arr)

    def _count(lo: int, hi: int) -> int:
        if hi - lo < 2:
            return 0
        mid = (lo + hi) >> 1
        inv = _count(lo, mid) + _count(mid, hi)
        i, j, k = lo, mid, lo
        while i < mid and j < hi:
            if arr[j] < arr[i]:
                inv += mid - i
                buf[k] = arr[j]
                j += 1
            else:
                buf[k] = arr[i]
                i += 1
            k += 1
        buf[k:hi] = arr[i:mid] if i < mid else arr[j:hi]
        arr[lo:hi] = buf[lo:hi]
        return inv

    return _count(0, len(arr))


def inversion_ratio(ts: Sequence) -> float:
    """``Inv(X)`` normalised by the pair count ``n (n - 1) / 2`` — in [0, 1]."""
    n = len(ts)
    if n < 2:
        return 0.0
    return count_inversions(ts) / (n * (n - 1) / 2)
