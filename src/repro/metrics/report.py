"""One-call disorder profiling: from an arrival stream to a tuning report.

Combines everything the library can say about a stream's disorder — the
classic measures, the IIR profile, the empirical overlap — and, when the
delay vector is available, fits a delay model by moment matching so the
paper's analytical predictions (optimal block size, expected overlap) can be
evaluated against the measurements.  This is the "which sorter / which L
should I use" API a downstream adopter actually wants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.block_size import find_block_size
from repro.errors import InvalidParameterError
from repro.metrics.disorder import disorder_summary
from repro.metrics.delay_stats import mean_overhang
from repro.metrics.interval_inversion import iir_profile, iir_truncation_point
from repro.theory.distributions import (
    DelayDistribution,
    ExponentialDelay,
    LogNormalDelay,
)
from repro.theory.predictions import expected_overlap, optimal_block_size


def fit_delay_model(delays) -> DelayDistribution:
    """Moment-match a delay distribution family to observed delays.

    Chooses between Exponential (coefficient of variation ≈ 1) and
    LogNormal (heavy tail) — the two families the paper's synthetic
    evaluation uses.  A crude but honest fit: the report records which
    family was picked so users can override it.
    """
    arr = np.asarray(delays, dtype=float)
    if arr.size < 2:
        raise InvalidParameterError("need at least two delays to fit a model")
    positive = arr[arr > 0]
    mean = float(arr.mean())
    if mean <= 0 or positive.size < 2:
        # Degenerate: effectively no delay.
        return ExponentialDelay(1e9)
    std = float(arr.std())
    cv = std / mean
    if cv <= 1.25:
        return ExponentialDelay(1.0 / mean)
    logs = np.log(positive)
    return LogNormalDelay(float(logs.mean()), float(logs.std()))


@dataclass
class DisorderReport:
    """Everything measured and predicted about one stream's disorder."""

    n: int
    summary: dict
    iir: list[tuple[int, float]]
    truncation_point: int
    measured_overlap: float
    searched_block_size: int
    fitted_model: str | None = None
    predicted_overlap: float | None = None
    predicted_block_size: float | None = None
    recommendation: str = ""
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"disorder report over {self.n} points",
            f"  inversions        : {self.summary['inversions']}"
            f" (ratio {self.summary['inversion_ratio']:.2e})",
            f"  runs / dis / rem  : {self.summary['runs']} / {self.summary['dis']}"
            f" / {self.summary['rem']}",
            f"  IIR truncation    : L = {self.truncation_point}",
            f"  measured overlap Q: {self.measured_overlap:.2f}",
            f"  searched block L  : {self.searched_block_size}",
        ]
        if self.fitted_model is not None:
            lines.append(f"  fitted delay model: {self.fitted_model}")
            lines.append(f"  predicted overlap : {self.predicted_overlap:.2f}")
            lines.append(f"  predicted optimum : L* = {self.predicted_block_size:.0f}")
        lines.append(f"  recommendation    : {self.recommendation}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def profile_stream(timestamps, delays=None) -> DisorderReport:
    """Build a :class:`DisorderReport` for an arrival-ordered timestamp list.

    Args:
        timestamps: generation timestamps in arrival order.
        delays: optional per-point delay vector (generation order); enables
            the model-fitting half of the report.
    """
    ts = list(timestamps)
    n = len(ts)
    if n < 2:
        raise InvalidParameterError("need at least two points to profile")
    summary = disorder_summary(ts)
    profile = iir_profile(ts)
    truncation = iir_truncation_point(ts, threshold=1e-3)
    overlap = mean_overhang(ts)
    searched = find_block_size(list(ts)).block_size

    report = DisorderReport(
        n=n,
        summary=summary,
        iir=profile,
        truncation_point=truncation,
        measured_overlap=overlap,
        searched_block_size=searched,
    )
    if delays is not None:
        model = fit_delay_model(delays)
        report.fitted_model = f"{model.name}"
        report.predicted_overlap = expected_overlap(model)
        report.predicted_block_size = optimal_block_size(
            report.predicted_overlap, n=n
        )
        if not math.isfinite(report.predicted_overlap):
            report.notes.append("fitted model has unbounded overlap; prediction unreliable")

    inversion_ratio = summary["inversion_ratio"]
    if summary["inversions"] == 0:
        report.recommendation = "data already sorted; any adaptive sorter is O(n)"
    elif searched * 2 >= n:
        # Near-n block sizes mean the search ran out of reliable samples:
        # the blocking idea has nothing local left to exploit.
        report.recommendation = (
            "disorder too distant for blocking - Backward-Sort degenerates to "
            "Quicksort (consider the separation policy upstream)"
        )
    elif inversion_ratio < 1e-4 and summary["rem"] < n // 100:
        report.recommendation = (
            f"mild, local disorder: Backward-Sort with L={searched} "
            "(near-insertion behaviour, minimal moves)"
        )
    else:
        report.recommendation = f"Backward-Sort with searched L={searched}"
    return report
