"""Disorder measures for out-of-order time series (paper §II, §III-A)."""

from repro.metrics.delay_stats import (
    check_delay_only,
    delay_difference_samples,
    empirical_delay_difference_tail,
    expected_nonnegative_delay_difference,
    max_overhang,
    mean_overhang,
)
from repro.metrics.disorder import dis, disorder_summary, exc, rem, runs
from repro.metrics.interval_inversion import (
    count_interval_inversions,
    empirical_interval_inversion_ratio,
    iir_profile,
    iir_truncation_point,
    interval_inversion_ratio,
)
from repro.metrics.report import DisorderReport, fit_delay_model, profile_stream
from repro.metrics.inversions import (
    FenwickTree,
    count_inversions,
    count_inversions_merge,
    inversion_ratio,
)

__all__ = [
    "FenwickTree",
    "check_delay_only",
    "count_interval_inversions",
    "count_inversions",
    "count_inversions_merge",
    "delay_difference_samples",
    "dis",
    "DisorderReport",
    "fit_delay_model",
    "profile_stream",
    "disorder_summary",
    "empirical_delay_difference_tail",
    "empirical_interval_inversion_ratio",
    "exc",
    "expected_nonnegative_delay_difference",
    "iir_profile",
    "iir_truncation_point",
    "interval_inversion_ratio",
    "inversion_ratio",
    "max_overhang",
    "mean_overhang",
    "rem",
    "runs",
]
