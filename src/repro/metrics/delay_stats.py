"""Delay-difference and overlap statistics on arrival streams.

These estimators close the loop between the theory package and measured
data:

* :func:`delay_difference_samples` — empirical ``Δτ = τ_i - τ_j`` samples
  from a known delay vector (Definition 6).
* :func:`empirical_delay_difference_tail` — the empirical ``F̄_Δτ(L)``,
  which Proposition 2 says must match the measured ``α_L``.
* :func:`mean_overhang` — the empirical overlap ``Q``: for each point, how
  many earlier-arrived points carry a larger timestamp (Equation 18's
  indicator sum), averaged over the stream.  Proposition 4 bounds its
  expectation by ``E(Δτ | Δτ >= 0)``.
* :func:`check_delay_only` — verifies the arrival stream's delay-only
  property (§II-B2): no point arrives before its generation position.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.metrics.inversions import FenwickTree, _dense_ranks


def delay_difference_samples(
    delays: Sequence[float], pairs: int = 100_000, seed: int = 0
) -> np.ndarray:
    """Sample ``Δτ = τ_i - τ_j`` for random i.i.d. index pairs.

    Since delays are i.i.d. (Definition 5), sampling random unordered pairs
    from the observed delay vector estimates the Δτ distribution directly.
    """
    arr = np.asarray(delays, dtype=float)
    if arr.size < 2:
        raise InvalidParameterError("need at least two delays to form a pair")
    rng = np.random.default_rng(seed)
    i = rng.integers(0, arr.size, size=pairs)
    j = rng.integers(0, arr.size, size=pairs)
    return arr[i] - arr[j]


def empirical_delay_difference_tail(delays: Sequence[float], length: float) -> float:
    """Empirical ``F̄_Δτ(L) = P(Δτ > L)`` computed over all ordered pairs.

    Uses the exact pairwise formulation via sorting rather than sampling:
    ``P(τ_i - τ_j > L)`` with ``(i, j)`` uniform over ordered pairs equals
    ``mean_j (#\\{i : τ_i > τ_j + L\\}) / n``.
    """
    arr = np.sort(np.asarray(delays, dtype=float))
    n = arr.size
    if n < 2:
        raise InvalidParameterError("need at least two delays")
    # For each τ_j, count delays strictly greater than τ_j + L.
    counts = n - np.searchsorted(arr, arr + length, side="right")
    return float(counts.sum()) / (n * n)


def expected_nonnegative_delay_difference(delays: Sequence[float]) -> float:
    """Empirical ``E(Δτ⁺) = E[max(Δτ, 0)]`` over all ordered pairs.

    This is the quantity the paper writes ``E(Δτ | Δτ >= 0)`` — its
    Example 7 evaluates it as the *unconditioned* positive part (10/16 for
    the uniform {0,1,2,3} delay), and Equation 20 identifies it with
    ``Σ_{k>=0} F̄_Δτ(k)``, the Proposition 4 bound on the overlap ``Q``.

    For a sorted sample, ``Σ_{i,j} max(τ_i - τ_j, 0) = Σ_k (2k - n + 1) τ_(k)``,
    giving an exact O(n log n) computation over all ``n²`` ordered pairs.
    """
    arr = np.sort(np.asarray(delays, dtype=float))
    n = arr.size
    if n < 2:
        raise InvalidParameterError("need at least two delays")
    k = np.arange(n, dtype=float)
    total = float(np.sum((2 * k - n + 1) * arr))
    return total / (n * n)


def mean_overhang(ts: Sequence) -> float:
    """Average number of earlier-arrived points with larger timestamps.

    This is the empirical counterpart of the overlap ``Q`` (Equation 18):
    ``mean_m #{i < m : t_i > t_m}``.  O(n log n) via a Fenwick tree.
    """
    n = len(ts)
    if n == 0:
        return 0.0
    ranks = _dense_ranks(ts)
    tree = FenwickTree(max(ranks) + 1)
    total = 0
    for seen, r in enumerate(ranks):
        total += seen - tree.prefix_sum(r)
        tree.add(r)
    return total / n


def max_overhang(ts: Sequence) -> int:
    """Largest per-point overhang — how deep a single merge can ever reach."""
    n = len(ts)
    if n == 0:
        return 0
    ranks = _dense_ranks(ts)
    tree = FenwickTree(max(ranks) + 1)
    worst = 0
    for seen, r in enumerate(ranks):
        overhang = seen - tree.prefix_sum(r)
        if overhang > worst:
            worst = overhang
        tree.add(r)
    return worst


def check_delay_only(
    generation_times: Sequence[float], delays: Sequence[float]
) -> bool:
    """True when the stream is *delay-only* (§II-B2): every delay is >= 0.

    "It is obvious that the data cannot appear 'ahead'" — a point's arrival
    time is its generation time plus a non-negative delay.  The workload
    generators call this on the delay vector they produced to guard against
    configuration errors (e.g. a delay distribution with negative support).
    """
    if len(generation_times) != len(delays):
        raise InvalidParameterError("generation_times and delays lengths differ")
    return all(d >= 0 for d in delays)
