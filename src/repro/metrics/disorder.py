"""Classic adaptive-sorting disorder measures: Runs, Dis, Exc, Rem.

The paper's related work (§III-A, §VII) situates ``Inv`` and the interval
inversion ratio among the established measures of presortedness
(Estivill-Castro & Wood's survey): Straight Insertion-Sort is adaptive in
``Inv``, Patience Sort in ``Runs``, and so on.  Implementing the full family
lets the workload generators and experiments characterise each dataset the
same way the adaptive-sorting literature does.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Sequence


def runs(ts: Sequence) -> int:
    """Number of maximal non-decreasing runs; 1 for sorted input, 0 if empty.

    ``Runs(X) - 1`` is the number of "step-downs"; Patience Sort's pile count
    is bounded below by it.
    """
    n = len(ts)
    if n == 0:
        return 0
    count = 1
    for i in range(1, n):
        if ts[i] < ts[i - 1]:
            count += 1
    return count


def dis(ts: Sequence) -> int:
    """``Dis(X)``: the largest distance an element must travel to its place.

    Computed against the *stable* sorted order (ties keep arrival order) so
    that a sorted-with-duplicates array scores 0.
    """
    n = len(ts)
    if n < 2:
        return 0
    order = sorted(range(n), key=lambda i: (ts[i], i))
    return max(abs(i - order[i]) for i in range(n))


def exc(ts: Sequence) -> int:
    """``Exc(X)``: the minimum number of exchanges that sort the array.

    Equal to ``n`` minus the number of cycles in the permutation taking the
    array to its stable sorted order.
    """
    n = len(ts)
    if n < 2:
        return 0
    order = sorted(range(n), key=lambda i: (ts[i], i))
    seen = [False] * n
    cycles = 0
    for start in range(n):
        if seen[start]:
            continue
        cycles += 1
        i = start
        while not seen[i]:
            seen[i] = True
            i = order[i]
    return n - cycles


def rem(ts: Sequence) -> int:
    """``Rem(X)``: elements that must be removed to leave a sorted sequence.

    ``n`` minus the length of the longest non-decreasing subsequence
    (patience-style O(n log n) computation).  Under delay-only arrivals with
    bounded delays, ``Rem`` counts roughly the delayed points.
    """
    tails: list = []
    for t in ts:
        # Longest non-decreasing: replace the first strictly-greater tail.
        pos = bisect_right(tails, t)
        if pos == len(tails):
            tails.append(t)
        else:
            tails[pos] = t
    return len(ts) - len(tails)


def disorder_summary(ts: Sequence) -> dict[str, float]:
    """All measures at once, plus the normalised inversion ratio."""
    from repro.metrics.inversions import count_inversions, inversion_ratio

    return {
        "n": len(ts),
        "inversions": count_inversions(ts),
        "inversion_ratio": inversion_ratio(ts),
        "runs": runs(ts),
        "dis": dis(ts),
        "exc": exc(ts),
        "rem": rem(ts),
    }
