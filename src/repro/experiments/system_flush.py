"""Experiments E-fig16/17/18: flush time vs write percentage.

"The flush time records the range from when the table state transitions
(working to flushing) to the completion of writing to the disk" — our
flush pipeline clocks exactly that span and splits out the sorting share,
reproducing the stacked bars of Figures 16-18.  The sweep includes write
percentage 1.0 (no queries), which the paper's flush figures also plot.
"""

from __future__ import annotations

from repro.bench.workload import PAPER_WRITE_PERCENTAGES
from repro.bench.reporting import print_table
from repro.experiments.system_common import SystemExperimentRow, run_family

FAMILIES = (("absnormal", "Figure 16"), ("lognormal", "Figure 17"), ("realworld", "Figure 18"))


def run(family: str = "realworld", scale: str = "small", seed: int = 0) -> list[SystemExperimentRow]:
    return run_family(
        family,
        scale=scale,
        seed=seed,
        write_percentages=PAPER_WRITE_PERCENTAGES,
        include_write_only=True,
    )


def main(scale: str = "small") -> None:
    for family, figure in FAMILIES:
        rows = run(family, scale=scale)
        print_table(
            ("panel", "sorter", "write_pct", "flush_ms", "flush_sort_ms"),
            [
                (
                    r.panel,
                    r.sorter,
                    r.write_percentage,
                    r.mean_flush_seconds * 1e3,
                    r.flush_sort_seconds * 1e3,
                )
                for r in rows
            ],
            title=f"{figure} — flush time for {family} datasets "
            "(total with sort share broken out)",
        )


if __name__ == "__main__":
    main()
