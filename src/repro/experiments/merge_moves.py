"""Experiment E-ex3 (Figure 2 / Example 3): straight vs backward merge moves.

Two complementary views are provided:

* The paper's **analytic accounting** — straight merge ``4M + 4`` moves,
  backward merge ``3M + 7`` on its four-merge example, a ~25 % reduction —
  reproduced symbolically so the quoted numbers are checkable.
* A **measured comparison** on a concrete three-block layout (the figure's
  "timestamps sorted in three blocks separately", with points 1 and 3
  delayed to the heads of blocks 2 and 3), running this library's actual
  :func:`~repro.sorting.mergesort.straight_block_merge` and
  :func:`~repro.core.backward_merge.backward_merge_blocks` and comparing
  their recorded move counters.  Implementations charge buffer copies
  differently from the paper's hand count, so the measured numbers differ in
  constants — but the winner and the ≥ 25 % saving hold.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.backward_merge import backward_merge_blocks
from repro.core.instrumentation import SortStats
from repro.errors import InvalidParameterError
from repro.sorting.mergesort import straight_block_merge


def straight_merge_moves_model(m: int) -> int:
    """The paper's straight-merge move count on the Figure 2 example.

    Two local merges at ``M + 2`` moves each (a delayed point is parked in
    the auxiliary space and moved back) plus a final merge that re-moves the
    whole ``2M`` prefix: ``4M + 4`` in total.
    """
    if m < 1:
        raise InvalidParameterError(f"m must be >= 1, got {m}")
    return 4 * m + 4


def backward_merge_moves_model(m: int) -> int:
    """The paper's backward-merge move count: ``(M+2) + (M+1) + (M+4) = 3M + 7``.

    "The only redundant moves come from 3" — backward processing never
    re-moves an already-merged block.
    """
    if m < 1:
        raise InvalidParameterError(f"m must be >= 1, got {m}")
    return 3 * m + 7


def build_figure2_layout(m: int) -> tuple[list[int], list[int]]:
    """Three pre-sorted blocks of length ``m`` with points 1 and 3 delayed.

    Returns ``(timestamps, block_bounds)``.  Global content is ``1..3m``;
    point 1 leads block 2 and point 3 leads block 3, exactly the situation
    sketched in Figure 2.
    """
    if m < 2:
        raise InvalidParameterError(f"m must be >= 2, got {m}")
    block1 = [2] + list(range(4, m + 3))  # 2, 4, 5, ..., m+2
    block2 = [1] + list(range(m + 3, 2 * m + 2))
    block3 = [3] + list(range(2 * m + 2, 3 * m + 1))
    ts = block1 + block2 + block3
    return ts, [0, m, 2 * m, 3 * m]


@dataclass
class MergeMoveComparison:
    """Measured move counts for one Figure 2 layout."""

    m: int
    straight_moves: int
    backward_moves: int
    straight_extra_space: int
    backward_extra_space: int
    model_straight: int
    model_backward: int

    @property
    def saving(self) -> float:
        """Fraction of straight-merge moves that backward merge avoids."""
        if self.straight_moves == 0:
            return 0.0
        return 1.0 - self.backward_moves / self.straight_moves


def run_merge_move_comparison(m: int) -> MergeMoveComparison:
    """Run both merge strategies on the Figure 2 layout and compare moves."""
    ts, bounds = build_figure2_layout(m)

    straight_ts = list(ts)
    straight_vs = list(range(len(ts)))
    straight_stats = SortStats()
    straight_block_merge(straight_ts, straight_vs, bounds, straight_stats)
    if straight_ts != sorted(ts):
        raise AssertionError("straight merge failed to sort the layout")

    backward_ts = list(ts)
    backward_vs = list(range(len(ts)))
    backward_stats = SortStats()
    backward_merge_blocks(backward_ts, backward_vs, bounds, backward_stats)
    if backward_ts != sorted(ts):
        raise AssertionError("backward merge failed to sort the layout")

    return MergeMoveComparison(
        m=m,
        straight_moves=straight_stats.moves,
        backward_moves=backward_stats.moves,
        straight_extra_space=straight_stats.extra_space,
        backward_extra_space=backward_stats.extra_space,
        model_straight=straight_merge_moves_model(m),
        model_backward=backward_merge_moves_model(m),
    )


def run(block_lengths: tuple[int, ...] = (4, 16, 64, 256, 1024)) -> list[MergeMoveComparison]:
    """Sweep block lengths; one comparison row per M."""
    return [run_merge_move_comparison(m) for m in block_lengths]


def main() -> None:
    """Print the Figure 2 comparison table."""
    rows = run()
    header = (
        f"{'M':>6} {'straight':>10} {'backward':>10} {'saving':>8} "
        f"{'model 4M+4':>11} {'model 3M+7':>11}"
    )
    print("Figure 2 / Example 3 — straight vs backward merge (moves)")
    print(header)
    for r in rows:
        print(
            f"{r.m:>6} {r.straight_moves:>10} {r.backward_moves:>10} "
            f"{r.saving:>7.1%} {r.model_straight:>11} {r.model_backward:>11}"
        )


if __name__ == "__main__":
    main()
