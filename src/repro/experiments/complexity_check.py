"""Proposition 6 check: Backward-Sort's complexity across disorder regimes.

``O(max{n log n, n log L0 + η n Q / L0})`` predicts two regimes:

* **low disorder** (small Q): cost ≈ ``n log L`` with L near L0 — close to
  *linear* in n for fixed L, so doubling n should roughly double the cost;
* **high disorder** (large Q): the algorithm degenerates to Quicksort and
  cost tracks ``n log n``.

The experiment measures comparisons+moves (platform-independent) across a
doubling ladder of n for a mild and a heavy delay model, fits the local
scaling exponent between consecutive rungs, and prints it next to the
exponent Quicksort produces on the same data.  Expected shape: exponents
≈ 1.0-1.1 for Backward-Sort on mild disorder (sub-linearithmic), drifting
toward Quicksort's ≈ 1.0-1.15 · log-factor growth under heavy disorder.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bench.reporting import print_table
from repro.errors import InvalidParameterError
from repro.sorting import get_sorter
from repro.theory import ExponentialDelay, LogNormalDelay
from repro.workloads import TimeSeriesGenerator

_SCALE_TOP = {"tiny": 8_000, "small": 40_000, "medium": 160_000, "paper": 1_000_000}

#: (label, delay distribution) for the two regimes.
REGIMES = (
    ("mild exp(1)", ExponentialDelay(1.0)),
    ("heavy lognormal(1,2)", LogNormalDelay(1.0, 2.0)),
)


@dataclass
class ComplexityRow:
    regime: str
    algorithm: str
    n: int
    operations: int
    local_exponent: float | None  # d log(ops) / d log(n) vs previous rung


def run(scale: str = "small", seed: int = 0) -> list[ComplexityRow]:
    try:
        top = _SCALE_TOP[scale]
    except KeyError:
        raise InvalidParameterError(
            f"unknown scale {scale!r}; choose one of {sorted(_SCALE_TOP)}"
        ) from None
    ladder = [top // 8, top // 4, top // 2, top]
    rows: list[ComplexityRow] = []
    for label, dist in REGIMES:
        for algorithm in ("backward", "quick"):
            previous: tuple[int, int] | None = None
            for n in ladder:
                stream = TimeSeriesGenerator(dist).generate(n, seed=seed)
                ts, vs = stream.sort_input()
                stats = get_sorter(algorithm).sort(ts, vs)
                operations = stats.comparisons + stats.moves
                exponent = None
                if previous is not None:
                    prev_n, prev_ops = previous
                    exponent = math.log(operations / prev_ops) / math.log(n / prev_n)
                rows.append(
                    ComplexityRow(
                        regime=label,
                        algorithm=algorithm,
                        n=n,
                        operations=operations,
                        local_exponent=exponent,
                    )
                )
                previous = (n, operations)
    return rows


def main(scale: str = "small") -> None:
    rows = run(scale=scale)
    print_table(
        ("regime", "algorithm", "n", "comparisons+moves", "local exponent"),
        [
            (r.regime, r.algorithm, r.n, r.operations,
             "-" if r.local_exponent is None else round(r.local_exponent, 3))
            for r in rows
        ],
        title="Proposition 6 — operation-count scaling of Backward-Sort vs Quicksort",
    )


if __name__ == "__main__":
    main()
