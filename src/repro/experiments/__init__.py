"""One driver per paper figure/table; see ``repro.experiments.runner``.

Each module exposes ``run(...) -> rows`` (structured results, consumed by
``benchmarks/``) and ``main(scale)`` (prints the figure's series as a text
table).  The mapping from paper artifact to module is recorded in
DESIGN.md's per-experiment index.
"""

from repro.experiments import (
    ablation,
    complexity_check,
    delay_pdf,
    downstream_forecast,
    merge_moves,
    outage_robustness,
    parameter_tuning,
    sort_time_array_size,
    sort_time_realworld,
    sort_time_sigma,
    system_flush,
    system_latency,
    system_throughput,
)

__all__ = [
    "ablation",
    "complexity_check",
    "delay_pdf",
    "downstream_forecast",
    "merge_moves",
    "outage_robustness",
    "parameter_tuning",
    "sort_time_array_size",
    "sort_time_realworld",
    "sort_time_sigma",
    "system_flush",
    "system_latency",
    "system_throughput",
]
