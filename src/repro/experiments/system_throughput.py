"""Experiments E-fig13/14/15: query throughput vs write percentage.

"Backward sort shows improvement in query throughput in most tests by
accelerating sorting for query operations" — the query path sorts the
working memtable before scanning, so a faster sorter returns more points
per second of query time.  One table per dataset family (AbsNormal →
Figure 13, LogNormal → Figure 14, real-world → Figure 15).
"""

from __future__ import annotations

from repro.bench.reporting import print_table
from repro.experiments.system_common import (
    SystemExperimentRow,
    run_concurrent_ingest,
    run_family,
)

FAMILIES = (("absnormal", "Figure 13"), ("lognormal", "Figure 14"), ("realworld", "Figure 15"))


def run(family: str = "realworld", scale: str = "small", seed: int = 0) -> list[SystemExperimentRow]:
    return run_family(family, scale=scale, seed=seed)


def run_ingest(family: str = "realworld", scale: str = "small", seed: int = 0):
    """Concurrent ingest throughput per (panel, shard count)."""
    return run_concurrent_ingest(family, scale=scale, seed=seed)


def main(scale: str = "small") -> None:
    for family, figure in FAMILIES:
        rows = run(family, scale=scale)
        print_table(
            ("panel", "sorter", "write_pct", "query_throughput_pts_per_s"),
            [
                (r.panel, r.sorter, r.write_percentage, r.query_throughput)
                for r in rows
            ],
            title=f"{figure} — query throughput for {family} datasets",
        )
    ingest_rows = run_ingest("lognormal", scale=scale)
    print_table(
        ("panel", "shards", "writers", "ingest_pts_per_s", "flushes"),
        [
            (panel, r.shards, r.writers, r.points_per_second, r.flush_count)
            for panel, r in ingest_rows
        ],
        title="Concurrent ingest — sharded vs single-pipeline throughput",
    )


if __name__ == "__main__":
    main()
