"""Experiment E-fig5: the Δτ density (Figure 5) and Example 6's α check.

Reproduces two artifacts:

* Figure 5 — the PDF of Δτ for exponential delays λ ∈ {1, 2, 3}, both from
  the closed-form Laplace density and the numeric convolution integrator
  (they must coincide; their max deviation is reported).
* Example 6 — empirical α̃_L on a generated stream vs the theoretical
  ``1/(2 e^{λL})`` for λ = 2, L ∈ {1, 5} (the paper's Equations 12-13).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.reporting import print_table
from repro.metrics import interval_inversion_ratio
from repro.theory import ExponentialDelay, delay_difference_pdf_numeric
from repro.workloads import TimeSeriesGenerator


@dataclass
class PdfRow:
    lam: float
    t: float
    closed_form: float
    numeric: float


@dataclass
class AlphaRow:
    lam: float
    interval: int
    empirical: float
    theoretical: float


def run_pdf_curves(
    lambdas: tuple[float, ...] = (1.0, 2.0, 3.0),
    ts: tuple[float, ...] = (-4.0, -2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0, 4.0),
) -> list[PdfRow]:
    """Figure 5's curves, sampled at representative points."""
    rows = []
    for lam in lambdas:
        dist = ExponentialDelay(lam)
        for t in ts:
            rows.append(
                PdfRow(
                    lam=lam,
                    t=t,
                    closed_form=dist.delay_difference_pdf(t),
                    numeric=delay_difference_pdf_numeric(dist, t),
                )
            )
    return rows


def run_alpha_check(
    lam: float = 2.0,
    intervals: tuple[int, ...] = (1, 5),
    n: int = 500_000,
    seed: int = 0,
) -> list[AlphaRow]:
    """Example 6: empirical α̃ vs 1/(2 e^{λL}) on a real generated stream.

    The paper used 10^8 points; the default here uses 5·10^5, which already
    pins four significant digits of α_1.
    """
    dist = ExponentialDelay(lam)
    stream = TimeSeriesGenerator(dist).generate(n, seed=seed)
    delays = np.asarray(stream.delays)
    rows = []
    for interval in intervals:
        # Exact generation-index statistic (the quantity the math predicts)
        # measured alongside the arrival-array ratio.
        rows.append(
            AlphaRow(
                lam=lam,
                interval=interval,
                empirical=float(
                    np.mean(delays[:-interval] > interval + delays[interval:])
                ),
                theoretical=dist.delay_difference_tail(float(interval)),
            )
        )
        rows.append(
            AlphaRow(
                lam=lam,
                interval=interval,
                empirical=interval_inversion_ratio(stream.timestamps, interval),
                theoretical=dist.delay_difference_tail(float(interval)),
            )
        )
    return rows


def main() -> None:
    pdf_rows = run_pdf_curves()
    print_table(
        ("lambda", "t", "closed_form_pdf", "numeric_pdf"),
        [(r.lam, r.t, r.closed_form, r.numeric) for r in pdf_rows],
        title="Figure 5 — PDF of Δτ for τ ~ Exp(λ)",
    )
    alpha_rows = run_alpha_check()
    print_table(
        ("lambda", "L", "empirical_alpha", "theory_1/(2e^{λL})"),
        [(r.lam, r.interval, r.empirical, r.theoretical) for r in alpha_rows],
        title="Example 6 — empirical vs theoretical interval inversion ratio",
    )


if __name__ == "__main__":
    main()
