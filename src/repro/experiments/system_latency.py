"""Experiments E-fig19/20/21: total test latency vs write percentage.

"The total test latency mainly consists of preprocessing, query and flush,
which could indicate the whole performance of the IoTDB system."  Expected
shape: differences between sorters widen as queries dominate (lower write
percentages), with CKSort and YSort costing the most and Backward-Sort the
least.
"""

from __future__ import annotations

from repro.bench.reporting import print_table
from repro.experiments.system_common import (
    SystemExperimentRow,
    run_concurrent_ingest,
    run_family,
)

FAMILIES = (("absnormal", "Figure 19"), ("lognormal", "Figure 20"), ("realworld", "Figure 21"))


def run(family: str = "realworld", scale: str = "small", seed: int = 0) -> list[SystemExperimentRow]:
    return run_family(family, scale=scale, seed=seed)


def run_ingest(family: str = "realworld", scale: str = "small", seed: int = 0):
    """Concurrent ingest wall-clock per (panel, shard count)."""
    return run_concurrent_ingest(family, scale=scale, seed=seed)


def main(scale: str = "small") -> None:
    for family, figure in FAMILIES:
        rows = run(family, scale=scale)
        print_table(
            ("panel", "sorter", "write_pct", "total_latency_s"),
            [(r.panel, r.sorter, r.write_percentage, r.total_seconds) for r in rows],
            title=f"{figure} — total test latency for {family} datasets",
        )
    ingest_rows = run_ingest("lognormal", scale=scale)
    print_table(
        ("panel", "shards", "writers", "ingest_latency_s"),
        [
            (panel, r.shards, r.writers, r.elapsed_seconds)
            for panel, r in ingest_rows
        ],
        title="Concurrent ingest — end-to-end latency, sharded vs single-pipeline",
    )


if __name__ == "__main__":
    main()
