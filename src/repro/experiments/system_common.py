"""Shared grid definitions for the system experiments (Figures 13-21).

Each figure family (query throughput / flush time / total latency) reuses
the same (dataset × sorter × write-percentage) sweep; this module fixes the
dataset panels so all three families report over identical runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench import (
    PAPER_WRITE_PERCENTAGES,
    IngestBenchResult,
    SweepConfig,
    SystemBenchResult,
    SystemWorkloadConfig,
    run_ingest_benchmark,
    run_sweep,
)
from repro.errors import InvalidParameterError
from repro.experiments.common import SYSTEM_SCALE_POINTS, scale_points
from repro.sorting import PAPER_ALGORITHMS

#: The four panels of each system figure, per dataset family.
SYSTEM_PANELS: dict[str, list[tuple[str, dict]]] = {
    "absnormal": [
        ("absnormal", {"mu": 1.0, "sigma": 1.0}),
        ("absnormal", {"mu": 1.0, "sigma": 4.0}),
        ("absnormal", {"mu": 4.0, "sigma": 1.0}),
        ("absnormal", {"mu": 4.0, "sigma": 4.0}),
    ],
    "lognormal": [
        ("lognormal", {"mu": 1.0, "sigma": 0.5}),
        ("lognormal", {"mu": 1.0, "sigma": 1.0}),
        ("lognormal", {"mu": 1.0, "sigma": 2.0}),
        ("lognormal", {"mu": 4.0, "sigma": 1.0}),
    ],
    "realworld": [
        ("citibike-201808", {}),
        ("citibike-201902", {}),
        ("samsung-d5", {}),
        ("samsung-s10", {}),
    ],
}


@dataclass
class SystemExperimentRow:
    """One cell of a system figure: a metric per (panel, sorter, write %)."""

    panel: str
    sorter: str
    write_percentage: float
    query_throughput: float
    mean_flush_seconds: float
    flush_sort_seconds: float
    total_seconds: float
    queries_executed: int


def run_family(
    family: str,
    scale: str = "small",
    sorters: tuple[str, ...] = PAPER_ALGORITHMS,
    write_percentages: tuple[float, ...] = PAPER_WRITE_PERCENTAGES,
    include_write_only: bool = False,
    seed: int = 0,
    obs=None,
) -> list[SystemExperimentRow]:
    """Run the full sweep for one dataset family; one row per cell.

    When ``obs`` is omitted it is resolved from the ``REPRO_OBS``
    environment variable (:func:`repro.obs.from_env`): set ``REPRO_OBS=1``
    to aggregate every run of the family into one registry and print the
    metrics dump after the sweep (the experiment runner does the printing).
    """
    if family not in SYSTEM_PANELS:
        raise InvalidParameterError(
            f"unknown family {family!r}; choose one of {sorted(SYSTEM_PANELS)}"
        )
    if obs is None:
        from repro.obs import from_env

        obs = from_env()
    total_points = scale_points(scale, SYSTEM_SCALE_POINTS)
    rows: list[SystemExperimentRow] = []
    for dataset, params in SYSTEM_PANELS[family]:
        base = SystemWorkloadConfig(
            dataset=dataset,
            dataset_params=params,
            total_points=total_points,
            seed=seed,
        )
        sweep = SweepConfig(
            base=base,
            sorters=sorters,
            write_percentages=write_percentages,
            include_write_only=include_write_only,
            memtable_flush_threshold=max(total_points // 8, 500),
        )
        panel = _panel_label(dataset, params)
        for result in run_sweep(sweep, obs=obs):
            rows.append(_to_row(panel, result))
    if obs.enabled:
        print(obs.export_text())
    return rows


def run_concurrent_ingest(
    family: str,
    scale: str = "small",
    sorter: str = "backward",
    shard_counts: tuple[int, ...] = (1, 4),
    writers: int = 4,
    seed: int = 0,
    obs=None,
) -> list[tuple[str, IngestBenchResult]]:
    """Concurrent ingest rows: one per (panel, shard count).

    The threaded client (:func:`repro.bench.run_ingest_benchmark`) drives
    ``writers`` parallel batch streams into a sharded engine, so the
    system experiments can report real write concurrency: the shards=1
    rows show the single-pipeline ceiling, the shards=4 rows what the
    per-shard locks buy.
    """
    from repro.iotdb import IoTDBConfig

    if family not in SYSTEM_PANELS:
        raise InvalidParameterError(
            f"unknown family {family!r}; choose one of {sorted(SYSTEM_PANELS)}"
        )
    if obs is None:
        from repro.obs import from_env

        obs = from_env()
    total_points = scale_points(scale, SYSTEM_SCALE_POINTS)
    rows: list[tuple[str, IngestBenchResult]] = []
    for dataset, params in SYSTEM_PANELS[family]:
        workload = SystemWorkloadConfig(
            dataset=dataset,
            dataset_params=params,
            total_points=total_points,
            write_percentage=1.0,
            device="root.bench.d",
            n_devices=8,
            seed=seed,
        )
        panel = _panel_label(dataset, params)
        for shards in shard_counts:
            engine_config = IoTDBConfig(
                sorter=sorter,
                shards=shards,
                flush_workers=2 if shards > 1 else 0,
                memtable_flush_threshold=max(total_points // 8, 500),
            )
            rows.append(
                (
                    panel,
                    run_ingest_benchmark(
                        workload,
                        sorter=sorter,
                        engine_config=engine_config,
                        writers=writers,
                        obs=obs,
                    ),
                )
            )
    return rows


def _panel_label(dataset: str, params: dict) -> str:
    if params:
        return f"{dataset}({params.get('mu', 0):g},{params.get('sigma', 0):g})"
    return dataset


def _to_row(panel: str, result: SystemBenchResult) -> SystemExperimentRow:
    return SystemExperimentRow(
        panel=panel,
        sorter=result.sorter,
        write_percentage=result.write_percentage,
        query_throughput=result.query_throughput,
        mean_flush_seconds=result.mean_flush_seconds,
        flush_sort_seconds=result.mean_flush_sort_seconds,
        total_seconds=result.total_seconds,
        queries_executed=result.queries_executed,
    )
