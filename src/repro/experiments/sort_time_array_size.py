"""Experiment E-fig12: sort time vs array size (Figure 12).

"We choose AbsNormal(0,1), LogNormal(0,1), CitiBike-1808 and Samsung-S10
and vary the array size" — the paper sweeps 10^4 to 10^7; the default here
sweeps a decade ladder whose top rung scales with the chosen experiment
size.  Expected shape: every algorithm roughly linearithmic, Backward-Sort
lowest across scales, noisier rankings at the smallest size (the paper
notes sub-millisecond runs have larger relative error).
"""

from __future__ import annotations

from repro.bench.reporting import print_table
from repro.experiments.common import (
    ALGORITHM_SCALE_POINTS,
    SORT_TABLE_HEADERS,
    SortTimingRow,
    scale_points,
    time_sorter_on_stream,
)
from repro.sorting import PAPER_ALGORITHMS
from repro.workloads import load_dataset

#: The figure's dataset selection.
FIG12_DATASETS = (
    ("absnormal", {"mu": 0.0, "sigma": 1.0}),
    ("lognormal", {"mu": 0.0, "sigma": 1.0}),
    ("citibike-201808", {}),
    ("samsung-s10", {}),
)


def array_size_ladder(top: int) -> list[int]:
    """Decade ladder ending at ``top``: top/100, top/10, top."""
    return [max(top // 100, 1_000), max(top // 10, 2_000), top]


def run(
    scale: str = "small",
    algorithms: tuple[str, ...] = PAPER_ALGORITHMS,
    seed: int = 0,
    repeats: int = 3,
) -> list[SortTimingRow]:
    top = scale_points(scale, ALGORITHM_SCALE_POINTS)
    rows: list[SortTimingRow] = []
    for dataset, params in FIG12_DATASETS:
        for n in array_size_ladder(top):
            stream = load_dataset(dataset, n, seed=seed, **params)
            for name in algorithms:
                rows.append(time_sorter_on_stream(name, stream, repeats=repeats))
    return rows


def main(scale: str = "small") -> None:
    rows = run(scale=scale)
    print_table(
        SORT_TABLE_HEADERS,
        [r.as_tuple() for r in rows],
        title="Figure 12 — sort time varying the array size",
    )


if __name__ == "__main__":
    main()
