"""Experiment E-fig22: the downstream LSTM on (dis)ordered series.

Reproduces Figure 22(b): train and test MSE of the forecaster as the delay
σ of LogNormal(1, σ) grows.  σ = 0 is the fully ordered baseline; expected
shape — both losses grow with σ ("with the increase of the disordered
degree σ, it is generally harder to train and the application performance
degrades").
"""

from __future__ import annotations

from repro.bench.reporting import print_table
from repro.downstream import DisorderImpact, disorder_impact
from repro.errors import InvalidParameterError

#: Figure 22(b)'s σ grid.
PAPER_SIGMAS = (0.0, 0.25, 0.5, 1.0, 2.0, 4.0)

_SCALE_SETTINGS = {
    "tiny": (1_000, 6),
    "small": (3_000, 12),
    "medium": (8_000, 20),
    "paper": (20_000, 40),
}


def run(scale: str = "small", seed: int = 0) -> list[DisorderImpact]:
    try:
        n, epochs = _SCALE_SETTINGS[scale]
    except KeyError:
        raise InvalidParameterError(
            f"unknown scale {scale!r}; choose one of {sorted(_SCALE_SETTINGS)}"
        ) from None
    return disorder_impact(sigmas=PAPER_SIGMAS, n=n, epochs=epochs, seed=seed)


def main(scale: str = "small") -> None:
    rows = run(scale=scale)
    print_table(
        ("sigma", "train_mse", "test_mse", "train_ratio", "test_ratio"),
        [
            (r.sigma, r.train_mse, r.test_mse, r.train_ratio, r.test_ratio)
            for r in rows
        ],
        title="Figure 22(b) — LSTM forecast loss vs disorder σ "
        "(ratios normalised by the ordered σ=0 run)",
    )


if __name__ == "__main__":
    main()
