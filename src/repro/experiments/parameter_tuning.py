"""Experiment E-fig8: parameter tuning (Figure 8a + 8b).

(a) The interval inversion ratio of the four real-world(simulated)
    datasets at power-of-two intervals — the disorder fingerprint that
    predicts the optimal block size.
(b) Backward-Sort's sort time with the block size *fixed manually* across
    the same power-of-two ladder ("by omitting the first step of the
    algorithm, we directly set the block size manually"), exposing the
    U-shaped cost curve whose minimum the set-block-size phase must find.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.reporting import print_table
from repro.bench.timing import measure
from repro.core.block_size import find_block_size
from repro.experiments.common import ALGORITHM_SCALE_POINTS, scale_points
from repro.metrics import iir_profile
from repro.sorting import get_sorter
from repro.workloads import REAL_WORLD_DATASETS, ArrivalStream, load_dataset


@dataclass
class IIRRow:
    dataset: str
    interval: int
    alpha: float


@dataclass
class BlockSizeTimingRow:
    dataset: str
    block_size: int
    mean_seconds: float
    found_by_search: bool


def run_iir_profiles(scale: str = "small", seed: int = 0) -> list[IIRRow]:
    """Figure 8(a): α_L over power-of-two intervals per dataset."""
    n = scale_points(scale, ALGORITHM_SCALE_POINTS)
    rows: list[IIRRow] = []
    for name in REAL_WORLD_DATASETS:
        stream = load_dataset(name, n, seed=seed)
        for interval, alpha in iir_profile(stream.timestamps):
            rows.append(IIRRow(dataset=name, interval=interval, alpha=alpha))
    return rows


def _block_size_ladder(n: int) -> list[int]:
    ladder = []
    size = 2
    while size < n:
        ladder.append(size)
        size *= 4
    ladder.append(n)  # the Quicksort degenerate point
    return ladder


def run_block_size_sweep(
    scale: str = "small",
    seed: int = 0,
    repeats: int = 3,
    datasets: tuple[str, ...] = REAL_WORLD_DATASETS,
) -> list[BlockSizeTimingRow]:
    """Figure 8(b): sort time vs manually fixed block size, plus the L the
    set-block-size search would have chosen (marked in the output)."""
    n = scale_points(scale, ALGORITHM_SCALE_POINTS)
    rows: list[BlockSizeTimingRow] = []
    for name in datasets:
        stream = load_dataset(name, n, seed=seed)
        searched = find_block_size(list(stream.timestamps)).block_size
        for block_size in _block_size_ladder(n):
            timing = _time_fixed_block(stream, block_size, repeats)
            rows.append(
                BlockSizeTimingRow(
                    dataset=name,
                    block_size=block_size,
                    mean_seconds=timing,
                    found_by_search=_same_ladder_rung(block_size, searched),
                )
            )
    return rows


def _time_fixed_block(stream: ArrivalStream, block_size: int, repeats: int) -> float:
    def _sort(arrays):
        ts, vs = arrays
        get_sorter("backward", fixed_block_size=block_size).sort(ts, vs)

    return measure(_sort, repeats=repeats, setup=stream.sort_input).mean


def _same_ladder_rung(block_size: int, searched: int) -> bool:
    return block_size <= searched < block_size * 4


def best_block_size(rows: list[BlockSizeTimingRow], dataset: str) -> int:
    """The empirically fastest fixed block size for one dataset."""
    candidates = [r for r in rows if r.dataset == dataset]
    return min(candidates, key=lambda r: r.mean_seconds).block_size


@dataclass
class CostModelRow:
    """Proposition 5's prediction against measurement for one delay model."""

    dataset: str
    predicted_overlap: float
    predicted_optimum: float
    measured_optimum: int
    searched: int


def run_cost_model_comparison(
    scale: str = "small", seed: int = 0, repeats: int = 2
) -> list[CostModelRow]:
    """For known delay models, compare the Prop. 5 optimum ``L* = ηQ``
    against the empirically fastest fixed block size and the search's pick."""
    from repro.theory import ExponentialDelay, LogNormalDelay, expected_overlap
    from repro.workloads import TimeSeriesGenerator

    n = scale_points(scale, ALGORITHM_SCALE_POINTS)
    models = [
        ("exp(0.1)", ExponentialDelay(0.1)),
        ("exp(0.02)", ExponentialDelay(0.02)),
        ("lognormal(1,1)", LogNormalDelay(1.0, 1.0)),
    ]
    rows: list[CostModelRow] = []
    for label, dist in models:
        stream = TimeSeriesGenerator(dist, name=label).generate(n, seed=seed)
        overlap = expected_overlap(dist)
        ladder = _block_size_ladder(n)
        timings = {
            size: _time_fixed_block(stream, size, repeats) for size in ladder
        }
        measured = min(timings, key=timings.get)
        searched = find_block_size(list(stream.timestamps)).block_size
        from repro.theory import optimal_block_size

        rows.append(
            CostModelRow(
                dataset=label,
                predicted_overlap=overlap,
                predicted_optimum=optimal_block_size(overlap, n=n),
                measured_optimum=measured,
                searched=searched,
            )
        )
    return rows


def main(scale: str = "small") -> None:
    iir_rows = run_iir_profiles(scale)
    print_table(
        ("dataset", "interval", "alpha"),
        [(r.dataset, r.interval, r.alpha) for r in iir_rows],
        title="Figure 8(a) — interval inversion ratio vs interval",
    )
    sweep = run_block_size_sweep(scale)
    print_table(
        ("dataset", "block_size", "time_ms", "search_rung"),
        [
            (r.dataset, r.block_size, r.mean_seconds * 1e3, "*" if r.found_by_search else "")
            for r in sweep
        ],
        title="Figure 8(b) — Backward-Sort time vs fixed block size "
        "(* = rung the set-block-size search lands on)",
    )
    model_rows = run_cost_model_comparison(scale)
    print_table(
        ("delay model", "E(Q)", "predicted L*", "measured best L", "searched L"),
        [
            (r.dataset, r.predicted_overlap, r.predicted_optimum, r.measured_optimum, r.searched)
            for r in model_rows
        ],
        title="Proposition 5 — cost-model optimum vs measured optimum vs search",
    )


if __name__ == "__main__":
    main()
