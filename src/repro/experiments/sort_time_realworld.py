"""Experiment E-fig11: sort time on the real-world(simulated) datasets.

One bar per algorithm per dataset.  Expected shape (paper §VI-C1): YSort
shines on the barely disordered Samsung-D5 but collapses on
CitiBike-201808; CKSort is stable but behind Backward-Sort; Backward-Sort
leads overall.
"""

from __future__ import annotations

from repro.bench.reporting import print_table
from repro.experiments.common import (
    ALGORITHM_SCALE_POINTS,
    SORT_TABLE_HEADERS,
    SortTimingRow,
    scale_points,
    time_sorter_on_stream,
)
from repro.sorting import PAPER_ALGORITHMS
from repro.workloads import REAL_WORLD_DATASETS, load_dataset


def run(
    scale: str = "small",
    datasets: tuple[str, ...] = REAL_WORLD_DATASETS,
    algorithms: tuple[str, ...] = PAPER_ALGORITHMS,
    seed: int = 0,
    repeats: int = 3,
) -> list[SortTimingRow]:
    n = scale_points(scale, ALGORITHM_SCALE_POINTS)
    rows: list[SortTimingRow] = []
    for dataset in datasets:
        stream = load_dataset(dataset, n, seed=seed)
        for name in algorithms:
            rows.append(time_sorter_on_stream(name, stream, repeats=repeats))
    return rows


def main(scale: str = "small") -> None:
    rows = run(scale=scale)
    print_table(
        SORT_TABLE_HEADERS,
        [r.as_tuple() for r in rows],
        title="Figure 11 — sort time on real-world datasets",
    )


if __name__ == "__main__":
    main()
