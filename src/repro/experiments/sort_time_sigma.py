"""Experiments E-fig9 / E-fig10: sort time vs delay σ (Figures 9 and 10).

"Since σ has a greater impact on the inversions, we set µ = 1 or µ = 4 and
then vary the standard deviation σ to change the degree of out-of-order."
One series per algorithm (the paper's six), AbsNormal for Figure 9 and
LogNormal for Figure 10.

Expected shapes: sort time grows with σ for every algorithm; Backward-Sort
leads overall (paper: 30-100 % faster than Quicksort); Patience destabilises
on LogNormal.
"""

from __future__ import annotations

from repro.bench.reporting import print_table
from repro.experiments.common import (
    ALGORITHM_SCALE_POINTS,
    SORT_TABLE_HEADERS,
    SortTimingRow,
    scale_points,
    time_sorter_on_stream,
)
from repro.sorting import PAPER_ALGORITHMS
from repro.workloads import abs_normal, log_normal

#: The σ grid of Figures 9 and 10.
PAPER_SIGMAS = (0.25, 0.5, 1.0, 2.0, 4.0)
#: The µ settings of the two sub-figures in each family.
PAPER_MUS = (1.0, 4.0)


def run(
    family: str = "absnormal",
    scale: str = "small",
    mus: tuple[float, ...] = PAPER_MUS,
    sigmas: tuple[float, ...] = PAPER_SIGMAS,
    algorithms: tuple[str, ...] = PAPER_ALGORITHMS,
    seed: int = 0,
    repeats: int = 3,
) -> list[SortTimingRow]:
    """One row per (µ, σ, algorithm)."""
    n = scale_points(scale, ALGORITHM_SCALE_POINTS)
    factory = abs_normal if family == "absnormal" else log_normal
    rows: list[SortTimingRow] = []
    for mu in mus:
        for sigma in sigmas:
            stream = factory(n, mu=mu, sigma=sigma, seed=seed)
            for name in algorithms:
                rows.append(time_sorter_on_stream(name, stream, repeats=repeats))
    return rows


def main_family(family: str, scale: str = "small") -> None:
    from repro.bench.reporting import ascii_series

    figure = "Figure 9" if family == "absnormal" else "Figure 10"
    rows = run(family=family, scale=scale)
    print_table(
        SORT_TABLE_HEADERS,
        [r.as_tuple() for r in rows],
        title=f"{figure} — sort time on {family} datasets, varying σ",
    )
    # Figure-style view: one series per algorithm over σ (µ = 1 panel).
    series: dict[str, list[tuple[float, float]]] = {}
    for r in rows:
        if not r.dataset.endswith(")") or "(1," not in r.dataset:
            continue
        sigma = float(r.dataset.split(",")[1].rstrip(")"))
        series.setdefault(r.algorithm, []).append((sigma, r.mean_seconds * 1e3))
    print(
        ascii_series(
            series,
            title=f"{figure} (µ=1 panel): sort time (ms) vs σ",
        )
    )
    print()


def main(scale: str = "small") -> None:
    for family in ("absnormal", "lognormal"):
        main_family(family, scale)


if __name__ == "__main__":
    main()
