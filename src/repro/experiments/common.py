"""Shared plumbing for the per-figure experiment drivers.

Every driver exposes ``run(scale=...) -> rows`` and ``main()`` which prints
the paper's series as a text table.  ``scale`` maps to array sizes: the
paper ran 10^6-point arrays for algorithm experiments and 10^7 points for
system tests on a Java testbed; a pure-Python reproduction defaults to
"small" so the whole suite finishes in minutes, with "medium"/"paper"
available when more fidelity is wanted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.timing import measure
from repro.errors import InvalidParameterError
from repro.sorting import get_sorter
from repro.workloads import ArrivalStream

#: Array sizes per scale for the pure-algorithm experiments.
ALGORITHM_SCALE_POINTS = {
    "tiny": 2_000,
    "small": 20_000,
    "medium": 100_000,
    "paper": 1_000_000,
}

#: Total ingested points per scale for the system experiments.
SYSTEM_SCALE_POINTS = {
    "tiny": 4_000,
    "small": 20_000,
    "medium": 100_000,
    "paper": 1_000_000,
}


def scale_points(scale: str, table: dict[str, int]) -> int:
    try:
        return table[scale]
    except KeyError:
        raise InvalidParameterError(
            f"unknown scale {scale!r}; choose one of {sorted(table)}"
        ) from None


@dataclass
class SortTimingRow:
    """One (dataset, algorithm) cell of a sort-time figure."""

    dataset: str
    algorithm: str
    n: int
    mean_seconds: float
    std_seconds: float
    comparisons: int
    moves: int

    def as_tuple(self):
        return (
            self.dataset,
            self.algorithm,
            self.n,
            self.mean_seconds * 1e3,  # report milliseconds like the paper
            self.std_seconds * 1e3,
            self.comparisons,
            self.moves,
        )


SORT_TABLE_HEADERS = (
    "dataset",
    "algorithm",
    "n",
    "time_ms",
    "std_ms",
    "comparisons",
    "moves",
)


def time_sorter_on_stream(
    name: str,
    stream: ArrivalStream,
    repeats: int = 3,
    **sorter_kwargs,
) -> SortTimingRow:
    """Measure one algorithm on one stream with fresh copies per run."""
    last_stats = {}

    def _sort(arrays):
        ts, vs = arrays
        stats = get_sorter(name, **sorter_kwargs).sort(ts, vs)
        last_stats["stats"] = stats

    timing = measure(_sort, repeats=repeats, setup=stream.sort_input)
    stats = last_stats["stats"]
    return SortTimingRow(
        dataset=stream.name,
        algorithm=name,
        n=len(stream),
        mean_seconds=timing.mean,
        std_seconds=timing.std,
        comparisons=stats.comparisons,
        moves=stats.moves,
    )
