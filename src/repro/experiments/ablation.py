"""Ablation experiment: quantify each Backward-Sort design choice.

DESIGN.md §6 lists the design decisions worth ablating; the benchmark
targets in ``benchmarks/bench_ablation_*.py`` time them under
pytest-benchmark, and this driver prints them as one comparable table for
the ``repro-experiments`` CLI: every variant on the same stream, with time,
the block size it ended up using, and its operation counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.reporting import print_table
from repro.bench.timing import measure
from repro.experiments.common import ALGORITHM_SCALE_POINTS, scale_points
from repro.sorting import get_sorter
from repro.workloads import log_normal

#: (label, backward-sorter kwargs) for every ablated variant.
VARIANTS: tuple[tuple[str, dict], ...] = (
    ("default (searched L, Θ=0.04, quick blocks)", {}),
    ("paper L0=4", {"l0": 4}),
    ("L0=128", {"l0": 128}),
    ("Θ=0.01", {"theta": 0.01}),
    ("Θ=0.16", {"theta": 0.16}),
    ("growth=ratio", {"growth": "ratio"}),
    ("blocks=insertion", {"block_sort": "insertion"}),
    ("blocks=tim", {"block_sort": "tim"}),
    ("blocks=run-adaptive", {"block_sort": "run-adaptive"}),
    ("fixed L=64", {"fixed_block_size": 64}),
    ("fixed L=1024", {"fixed_block_size": 1024}),
    ("fixed L=N (quicksort)", {"fixed_block_size": -1}),  # resolved to n below
)


@dataclass
class AblationRow:
    variant: str
    mean_seconds: float
    block_size: int | None
    comparisons: int
    moves: int


def run(scale: str = "small", seed: int = 0, repeats: int = 3) -> list[AblationRow]:
    n = scale_points(scale, ALGORITHM_SCALE_POINTS)
    stream = log_normal(n, mu=1.0, sigma=1.0, seed=seed)
    rows: list[AblationRow] = []
    for label, kwargs in VARIANTS:
        resolved = dict(kwargs)
        if resolved.get("fixed_block_size") == -1:
            resolved["fixed_block_size"] = n
        captured = {}

        def _sort(arrays, resolved=resolved, captured=captured):
            ts, vs = arrays
            captured["stats"] = get_sorter("backward", **resolved).sort(ts, vs)

        timing = measure(_sort, repeats=repeats, setup=stream.sort_input)
        stats = captured["stats"]
        rows.append(
            AblationRow(
                variant=label,
                mean_seconds=timing.mean,
                block_size=stats.block_size,
                comparisons=stats.comparisons,
                moves=stats.moves,
            )
        )
    return rows


def main(scale: str = "small") -> None:
    rows = run(scale=scale)
    print_table(
        ("variant", "time_ms", "L", "comparisons", "moves"),
        [
            (r.variant, r.mean_seconds * 1e3, r.block_size, r.comparisons, r.moves)
            for r in rows
        ],
        title="Backward-Sort ablations on lognormal(1,1) (DESIGN.md §6)",
    )


if __name__ == "__main__":
    main()
