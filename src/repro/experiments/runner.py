"""CLI entry point: run any (or every) paper experiment by name.

Installed as ``repro-experiments``::

    repro-experiments --list
    repro-experiments fig9 fig10 --scale small
    repro-experiments all --scale tiny
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.experiments import ablation, delay_pdf, downstream_forecast, merge_moves
from repro.experiments import complexity_check, outage_robustness
from repro.experiments import parameter_tuning, sort_time_array_size
from repro.experiments import sort_time_realworld, sort_time_sigma
from repro.experiments import system_flush, system_latency, system_throughput

#: experiment id -> (description, main(scale) callable).
EXPERIMENTS: dict[str, tuple[str, Callable[[str], None]]] = {
    "fig2": (
        "Figure 2 / Example 3: straight vs backward merge moves",
        lambda scale: merge_moves.main(),
    ),
    "fig5": (
        "Figure 5 / Example 6: Δτ PDF and α check for exponential delays",
        lambda scale: delay_pdf.main(),
    ),
    "fig8": (
        "Figure 8: IIR profiles and block-size tuning",
        parameter_tuning.main,
    ),
    "fig9": (
        "Figure 9: sort time on AbsNormal, varying σ",
        lambda scale: sort_time_sigma.main_family("absnormal", scale),
    ),
    "fig10": (
        "Figure 10: sort time on LogNormal, varying σ",
        lambda scale: sort_time_sigma.main_family("lognormal", scale),
    ),
    "fig11": (
        "Figure 11: sort time on real-world datasets",
        sort_time_realworld.main,
    ),
    "fig12": (
        "Figure 12: sort time varying array size",
        sort_time_array_size.main,
    ),
    "fig13-15": (
        "Figures 13-15: query throughput vs write percentage",
        system_throughput.main,
    ),
    "fig16-18": (
        "Figures 16-18: flush time vs write percentage",
        system_flush.main,
    ),
    "fig19-21": (
        "Figures 19-21: total test latency vs write percentage",
        system_latency.main,
    ),
    "fig22": (
        "Figure 22: downstream LSTM forecast vs disorder",
        downstream_forecast.main,
    ),
    "ablation": (
        "Ablations of Backward-Sort's design choices (DESIGN.md §6)",
        ablation.main,
    ),
    "outage": (
        "Extension: sorter robustness under correlated outage bursts",
        outage_robustness.main,
    ),
    "prop6": (
        "Proposition 6: operation-count scaling across disorder regimes",
        complexity_check.main,
    ),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables/figures of the Backward-Sort paper.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (see --list), or 'all'",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=("tiny", "small", "medium", "paper"),
        help="array / workload size (default: small)",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--output-dir",
        default=None,
        metavar="DIR",
        help="also write each experiment's console output to DIR/<id>.txt",
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        for name, (description, _) in EXPERIMENTS.items():
            print(f"{name:10s} {description}")
        return 0

    names = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2
    output_dir = None
    if args.output_dir is not None:
        from pathlib import Path

        output_dir = Path(args.output_dir)
        output_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        description, fn = EXPERIMENTS[name]
        print(f"=== {name}: {description} (scale={args.scale}) ===")
        start = time.perf_counter()
        if output_dir is not None:
            import contextlib
            import io

            capture = io.StringIO()
            with contextlib.redirect_stdout(capture):
                fn(args.scale)
            body = capture.getvalue()
            (output_dir / f"{name.replace('/', '-')}.txt").write_text(body)
            print(body, end="")
        else:
            fn(args.scale)
        print(f"[{name} completed in {time.perf_counter() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
