"""Extension experiment: sorter robustness under correlated outage bursts.

The paper's evaluation sweeps i.i.d. delay models; §II also names *system
failure* as a disorder source, which produces correlated backlog bursts
instead of thin jitter (see :mod:`repro.workloads.bursts`).  This experiment
sweeps the outage length and compares the paper's six algorithms, asking
whether Backward-Sort's lead survives when the i.i.d. assumption behind
Propositions 2-4 breaks.

Expected shape: bursts create long sorted backlog runs, so run-based
algorithms (Timsort, Patience) get *relatively* stronger than under i.i.d.
delays of equal inversion count, while Backward-Sort holds its lead as long
as the outage span stays below the block size its search picks.
"""

from __future__ import annotations

from repro.bench.reporting import print_table
from repro.experiments.common import (
    ALGORITHM_SCALE_POINTS,
    SORT_TABLE_HEADERS,
    SortTimingRow,
    scale_points,
    time_sorter_on_stream,
)
from repro.sorting import PAPER_ALGORITHMS
from repro.workloads import outage_stream

#: Outage lengths as a fraction of the outage period (1000 ticks).
OUTAGE_LENGTHS = (20, 100, 400)


def run(
    scale: str = "small",
    algorithms: tuple[str, ...] = PAPER_ALGORITHMS,
    seed: int = 0,
    repeats: int = 3,
) -> list[SortTimingRow]:
    n = scale_points(scale, ALGORITHM_SCALE_POINTS)
    rows: list[SortTimingRow] = []
    for outage_length in OUTAGE_LENGTHS:
        stream = outage_stream(
            n, outage_every=1_000, outage_length=outage_length, seed=seed
        )
        for name in algorithms:
            rows.append(time_sorter_on_stream(name, stream, repeats=repeats))
    return rows


def main(scale: str = "small") -> None:
    rows = run(scale=scale)
    print_table(
        SORT_TABLE_HEADERS,
        [r.as_tuple() for r in rows],
        title="Extension — sort time under correlated outage bursts "
        "(outage period 1000 ticks)",
    )


if __name__ == "__main__":
    main()
