"""Extension experiment: sorter robustness under correlated outage bursts.

The paper's evaluation sweeps i.i.d. delay models; §II also names *system
failure* as a disorder source, which produces correlated backlog bursts
instead of thin jitter (see :mod:`repro.workloads.bursts`).  This experiment
sweeps the outage length and compares the paper's six algorithms, asking
whether Backward-Sort's lead survives when the i.i.d. assumption behind
Propositions 2-4 breaks.

Expected shape: bursts create long sorted backlog runs, so run-based
algorithms (Timsort, Patience) get *relatively* stronger than under i.i.d.
delays of equal inversion count, while Backward-Sort holds its lead as long
as the outage span stays below the block size its search picks.

``--faults PLAN`` turns the "system failure" framing literal: it runs the
write path under a :mod:`repro.faults` plan (e.g.
``wal.write:nth=500:torn`` or ``flush.perform:p=0.05:kind=fail:fires=inf``),
recovers if the plan kills the engine, and reports whether every
acknowledged write survived — the crash-consistency harness as a bench
mode instead of a test.
"""

from __future__ import annotations

from repro.bench.reporting import print_table
from repro.experiments.common import (
    ALGORITHM_SCALE_POINTS,
    SORT_TABLE_HEADERS,
    SortTimingRow,
    scale_points,
    time_sorter_on_stream,
)
from repro.sorting import PAPER_ALGORITHMS
from repro.workloads import outage_stream

#: Outage lengths as a fraction of the outage period (1000 ticks).
OUTAGE_LENGTHS = (20, 100, 400)


def run(
    scale: str = "small",
    algorithms: tuple[str, ...] = PAPER_ALGORITHMS,
    seed: int = 0,
    repeats: int = 3,
) -> list[SortTimingRow]:
    n = scale_points(scale, ALGORITHM_SCALE_POINTS)
    rows: list[SortTimingRow] = []
    for outage_length in OUTAGE_LENGTHS:
        stream = outage_stream(
            n, outage_every=1_000, outage_length=outage_length, seed=seed
        )
        for name in algorithms:
            rows.append(time_sorter_on_stream(name, stream, repeats=repeats))
    return rows


def run_fault_bench(plan_spec: str, scale: str = "small", seed: int = 0):
    """Run the write-path workload under a fault plan and check recovery.

    Returns the :class:`repro.faults.harness.CrashCaseResult`; the engine
    state (recovered, if the plan crashed it) is verified point-for-point
    against the acknowledged-write oracle.
    """
    import tempfile
    from pathlib import Path

    from repro.faults.harness import FaultWorkload, run_fault_plan
    from repro.faults.plan import FaultPlan

    # Bench workloads sort millions of points; crash cases replay the whole
    # write path per run, so cap the fault workload at a tractable size.
    points = min(scale_points(scale, ALGORITHM_SCALE_POINTS), 5_000)
    workload = FaultWorkload(points=points, flush_threshold=200, seed=seed)
    plan = FaultPlan.parse(plan_spec, seed=seed)
    root = Path(tempfile.mkdtemp(prefix="repro-fault-bench-"))
    return run_fault_plan(workload, plan, root)


def main(scale: str = "small", faults: str | None = None) -> None:
    if faults is not None:
        result = run_fault_bench(faults, scale=scale)
        print_table(
            ("site", "call", "kind", "fired", "acked", "recovered", "violations"),
            [(
                result.site,
                result.nth,
                result.kind,
                result.fired,
                result.acked_points,
                result.recovered_points,
                len(result.violations),
            )],
            title=f"Extension — write path under fault plan {faults!r}",
        )
        for violation in result.violations:
            print(f"  VIOLATION: {violation}")
        if result.violations:
            raise SystemExit(1)
        return
    rows = run(scale=scale)
    print_table(
        SORT_TABLE_HEADERS,
        [r.as_tuple() for r in rows],
        title="Extension — sort time under correlated outage bursts "
        "(outage period 1000 ticks)",
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", default="small", choices=sorted(ALGORITHM_SCALE_POINTS)
    )
    parser.add_argument(
        "--faults",
        metavar="PLAN",
        default=None,
        help="repro.faults plan spec, e.g. 'wal.write:nth=500:torn' "
        "(see docs/FAULTS.md); runs the write path under the plan "
        "instead of the sorter sweep",
    )
    args = parser.parse_args()
    main(scale=args.scale, faults=args.faults)
