"""Exception hierarchy for the Backward-Sort reproduction.

All exceptions raised by this library derive from :class:`ReproError`, so a
caller can catch the whole family with one clause.  Sub-families mirror the
package layout: sorting, storage-engine (IoTDB substrate), workload
generation, and benchmarking each get their own branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class SortError(ReproError):
    """Raised when a sorting routine is mis-used or detects corruption."""


class LengthMismatchError(SortError):
    """Raised when timestamp and value arrays have different lengths."""

    def __init__(self, n_times: int, n_values: int) -> None:
        super().__init__(
            f"timestamps ({n_times}) and values ({n_values}) must have equal length"
        )
        self.n_times = n_times
        self.n_values = n_values


class InvalidParameterError(ReproError, ValueError):
    """Raised when a configuration or algorithm parameter is out of range."""


class StorageError(ReproError):
    """Base class for errors in the IoTDB storage substrate."""


class MemTableFlushedError(StorageError):
    """Raised when writing to a memtable that has already transitioned to flushing."""


class TsFileCorruptionError(StorageError):
    """Raised when a serialized TsFile-like blob fails validation on read."""


class EncodingError(StorageError):
    """Raised when a column encoder or decoder is fed invalid input."""


class WalCorruptionError(StorageError):
    """Raised when a write-ahead-log record fails its checksum."""


class IndexCorruptionError(StorageError):
    """Raised when a persisted interval-index file fails validation on read.

    Never fatal to the engine: recovery treats a corrupt (torn, truncated,
    bit-flipped) index file as absent and rebuilds the index from the
    sealed TsFiles themselves, which remain the source of truth.
    """


class BlobNotFoundError(StorageError):
    """Raised by a :class:`~repro.iotdb.backends.BlobStore` when a key is
    absent (the storage-interface analogue of ``FileNotFoundError``)."""


class MetaCorruptionError(StorageError):
    """Raised when ``meta/engine.json`` fails its framing or checksum.

    Only *structural* damage (torn, truncated, bit-flipped — what a crash
    mid-stamp can produce) raises this; ``StorageEngine.open`` responds by
    rebuilding the stamp from what the access path already proves.  A
    well-framed file whose fields are unsupported (e.g. a future engine
    version) is *not* corruption and is refused with a plain
    :class:`StorageError` instead — never misread, never overwritten.
    """


class QueryError(StorageError):
    """Raised for malformed queries (e.g. inverted time ranges)."""


class InjectedFaultError(StorageError):
    """A *recoverable* failure raised on purpose by ``repro.faults``.

    Models an I/O error the engine must survive: a failed flush keeps its
    memtable queued and retryable, a failed compaction leaves the old
    sealed files in place.  Ordinary ``except Exception`` error handling is
    allowed — and expected — to run.
    """


class InjectedCrashError(BaseException):
    """A simulated *process death* raised by ``repro.faults``.

    Derives from :class:`BaseException` (like ``KeyboardInterrupt``) so no
    ``except Exception`` cleanup path runs: after a real crash the process
    does not get to tidy up, and recovery must work from whatever bytes
    reached the disk.  Only the fault harness catches this.
    """

    def __init__(self, site: str, call: int) -> None:
        super().__init__(f"injected crash at fault site {site!r} (call #{call})")
        self.site = site
        self.call = call


class ConcurrencyError(ReproError):
    """Base class for runtime concurrency-discipline violations
    (:mod:`repro.analysis.concurrency`)."""


class LockOrderViolation(ConcurrencyError):
    """An acquisition closed a cycle in the process lock-order graph.

    Raised deterministically on the *second* ordering of an ABBA pair —
    before any thread blocks — carrying the acquisition stacks of both
    orderings.
    """


class GuardViolation(ConcurrencyError):
    """A ``GUARDED_BY`` attribute was accessed without its owning lock,
    or a ``@holds``-annotated helper ran without the lock it declares."""


class WorkloadError(ReproError):
    """Raised when a workload/dataset generator is configured inconsistently."""


class BenchmarkError(ReproError):
    """Raised when the benchmark harness is configured inconsistently."""
