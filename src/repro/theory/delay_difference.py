"""Numeric analysis of the delay difference ``Δτ = τ_i - τ_j`` (§IV-A).

Proposition 1 shows ``f_Δτ`` is even; Proposition 2 that the expected
interval inversion ratio equals its tail, ``E(α_L) = F̄_Δτ(L)``.  For
distributions without closed forms this module evaluates both by numeric
integration on a quantile-bounded grid:

* ``f_Δτ(t) = ∫ f(x + t) f(x) dx``  (Equation 6, the self-correlation), and
* ``F̄_Δτ(L) = P(τ_i > τ_j + L) = ∫ f(x) F̄(x + L) dx``.

Discrete distributions are handled by exact pmf summation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import InvalidParameterError
from repro.theory.distributions import DelayDistribution

#: Grid resolution for the numeric integrals; chosen so the exponential
#: closed forms are matched to ~1e-6 absolute error in the unit tests.
_GRID_POINTS = 4001


def _support_upper_bound(dist: DelayDistribution, quantile: float = 1.0 - 1e-9) -> float:
    """Upper integration bound: the ``quantile`` point found by bisection."""
    lo, hi = 0.0, 1.0
    while dist.cdf(hi) < quantile and hi < 1e12:
        hi *= 2.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if dist.cdf(mid) < quantile:
            lo = mid
        else:
            hi = mid
    return hi


def delay_difference_pdf_numeric(
    dist: DelayDistribution, t: float, grid_points: int = _GRID_POINTS
) -> float:
    """``f_Δτ(t)`` by trapezoidal integration of Equation 6."""
    if dist.discrete:
        raise InvalidParameterError(
            "use the distribution's delay_difference_pmf for discrete delays"
        )
    # The integrand vanishes below x = max(0, -t) (Equation 10's lower
    # bound); starting there keeps the kink on the grid boundary so the
    # trapezoid rule stays accurate and the evenness of f_Δτ is preserved
    # numerically.
    lower = max(0.0, -t)
    upper = lower + _support_upper_bound(dist)
    xs = np.linspace(lower, upper, grid_points)
    f = np.vectorize(dist.pdf, otypes=[float])
    integrand = f(xs + t) * f(xs)
    return float(np.trapezoid(integrand, xs))


def delay_difference_pdf_curve(
    dist: DelayDistribution, ts: np.ndarray, grid_points: int = _GRID_POINTS
) -> np.ndarray:
    """Vectorised :func:`delay_difference_pdf_numeric` over ``ts``."""
    return np.array(
        [delay_difference_pdf_numeric(dist, float(t), grid_points) for t in ts]
    )


def delay_difference_tail_numeric(
    dist: DelayDistribution, length: float, grid_points: int = _GRID_POINTS
) -> float:
    """``F̄_Δτ(L) = ∫ f(x) F̄(x + L) dx`` (continuous) or exact pmf sum.

    ``F̄(x + L) = P(τ_i > x + L)`` conditions on ``τ_j = x``; integrating out
    ``τ_j`` gives the unconditional tail, exactly the derivation of
    Equation 8.
    """
    if dist.discrete:
        # Exact double summation over the (small) integer support.
        upper = int(_support_upper_bound(dist)) + 2
        total = 0.0
        for j in range(upper + 1):
            pj = dist.pdf(float(j))
            if pj == 0.0:
                continue
            for i in range(upper + 1):
                if i - j > length:
                    total += pj * dist.pdf(float(i))
        return total
    upper = _support_upper_bound(dist)
    xs = np.linspace(0.0, upper, grid_points)
    f = np.vectorize(dist.pdf, otypes=[float])
    tail = np.vectorize(dist.tail, otypes=[float])
    integrand = f(xs) * tail(xs + length)
    return float(np.trapezoid(integrand, xs))


def verify_even_pdf(
    dist: DelayDistribution, ts: np.ndarray | None = None, tol: float = 1e-4
) -> bool:
    """Numerically check Proposition 1: ``f_Δτ(t) == f_Δτ(-t)``."""
    if ts is None:
        scale = max(dist.mean(), 1.0)
        if not math.isfinite(scale):
            scale = 10.0
        ts = np.linspace(0.1 * scale, 3.0 * scale, 7)
    for t in ts:
        pos = delay_difference_pdf_numeric(dist, float(t))
        neg = delay_difference_pdf_numeric(dist, float(-t))
        if abs(pos - neg) > tol * max(pos, neg, 1e-12):
            return False
    return True
