"""Delay distributions ``D`` (Definition 5) with sampling and analytics.

A :class:`DelayDistribution` models the i.i.d. per-point delay ``τ``.  Each
distribution can

* draw samples (driving the workload generators),
* evaluate its density / mass, CDF, and mean,
* compute the *delay-difference tail* ``F̄_Δτ(L) = P(τ_i - τ_j > L)`` — the
  quantity Proposition 2 identifies with the expected interval inversion
  ratio ``E(α_L)`` — either in closed form (Exponential, DiscreteUniform)
  or numerically through :mod:`repro.theory.delay_difference`.

The evaluation's synthetic datasets use :class:`AbsNormalDelay` and
:class:`LogNormalDelay` (paper §VI-A3), with the standard deviation ``σ``
controlling the degree of out-of-order.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.errors import InvalidParameterError

_SQRT2 = math.sqrt(2.0)


def _norm_pdf(x: float) -> float:
    return math.exp(-0.5 * x * x) / math.sqrt(2.0 * math.pi)


def _norm_cdf(x: float) -> float:
    return 0.5 * (1.0 + math.erf(x / _SQRT2))


class DelayDistribution(ABC):
    """Abstract i.i.d. delay model ``τ ~ D`` with non-negative support."""

    #: True for distributions over integers (affects E(Q) accumulation).
    discrete: bool = False

    @abstractmethod
    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` delays; all values must be >= 0 (delay-only)."""

    @abstractmethod
    def pdf(self, t: float) -> float:
        """Density (or mass, for discrete distributions) at ``t``."""

    @abstractmethod
    def cdf(self, t: float) -> float:
        """``P(τ <= t)``."""

    @abstractmethod
    def mean(self) -> float:
        """``E(τ)``."""

    def tail(self, t: float) -> float:
        """``F̄(t) = P(τ > t)``."""
        return 1.0 - self.cdf(t)

    def delay_difference_tail(self, length: float) -> float:
        """``F̄_Δτ(L) = P(τ_i - τ_j > L)`` for independent ``τ_i, τ_j``.

        Subclasses override with closed forms where they exist; the default
        defers to the numeric integrator.
        """
        from repro.theory.delay_difference import delay_difference_tail_numeric

        return delay_difference_tail_numeric(self, length)

    @property
    def name(self) -> str:
        return type(self).__name__.removesuffix("Delay")

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<{type(self).__name__}>"


class ConstantDelay(DelayDistribution):
    """Every point delayed by the same constant — a fully ordered stream."""

    def __init__(self, value: float = 0.0) -> None:
        if value < 0:
            raise InvalidParameterError(f"delay must be >= 0, got {value}")
        self.value = value

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(n, self.value)

    def pdf(self, t: float) -> float:
        return math.inf if t == self.value else 0.0

    def cdf(self, t: float) -> float:
        return 1.0 if t >= self.value else 0.0

    def mean(self) -> float:
        return self.value

    def delay_difference_tail(self, length: float) -> float:
        # Δτ is identically zero.
        return 0.0 if length >= 0 else 1.0


class ExponentialDelay(DelayDistribution):
    """``τ ~ Exp(λ)`` — the paper's worked Example 6.

    The delay difference has the Laplace density ``f_Δτ(t) = λ e^{-λ|t|}/2``
    (Equation 10), hence ``E(α_L) = F̄_Δτ(L) = e^{-λL}/2`` (Equation 11).
    """

    def __init__(self, lam: float = 1.0) -> None:
        if lam <= 0:
            raise InvalidParameterError(f"lambda must be > 0, got {lam}")
        self.lam = lam

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.exponential(scale=1.0 / self.lam, size=n)

    def pdf(self, t: float) -> float:
        return self.lam * math.exp(-self.lam * t) if t >= 0 else 0.0

    def cdf(self, t: float) -> float:
        return 1.0 - math.exp(-self.lam * t) if t >= 0 else 0.0

    def mean(self) -> float:
        return 1.0 / self.lam

    def delay_difference_pdf(self, t: float) -> float:
        """Closed-form Laplace density of Δτ (Equation 10, Figure 5)."""
        return 0.5 * self.lam * math.exp(-self.lam * abs(t))

    def delay_difference_tail(self, length: float) -> float:
        if length >= 0:
            return 0.5 * math.exp(-self.lam * length)
        return 1.0 - 0.5 * math.exp(self.lam * length)


class AbsNormalDelay(DelayDistribution):
    """``τ = |N(µ, σ²)|`` — the AbsNormal synthetic dataset (paper §VI-A3).

    ``σ`` is the disorder knob swept in Figure 9; ``µ`` shifts how far the
    typical delay reaches (the paper uses µ = 1 and µ = 4).
    """

    def __init__(self, mu: float = 0.0, sigma: float = 1.0) -> None:
        if sigma < 0:
            raise InvalidParameterError(f"sigma must be >= 0, got {sigma}")
        self.mu = mu
        self.sigma = sigma

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return np.abs(rng.normal(loc=self.mu, scale=self.sigma, size=n))

    def pdf(self, t: float) -> float:
        if t < 0:
            return 0.0
        if self.sigma == 0:
            return math.inf if t == abs(self.mu) else 0.0
        z1 = (t - self.mu) / self.sigma
        z2 = (t + self.mu) / self.sigma
        return (_norm_pdf(z1) + _norm_pdf(z2)) / self.sigma

    def cdf(self, t: float) -> float:
        if t < 0:
            return 0.0
        if self.sigma == 0:
            return 1.0 if t >= abs(self.mu) else 0.0
        return _norm_cdf((t - self.mu) / self.sigma) - _norm_cdf(
            (-t - self.mu) / self.sigma
        )

    def mean(self) -> float:
        if self.sigma == 0:
            return abs(self.mu)
        z = self.mu / self.sigma
        return self.sigma * math.sqrt(2.0 / math.pi) * math.exp(
            -0.5 * z * z
        ) + self.mu * (1.0 - 2.0 * _norm_cdf(-z))


class LogNormalDelay(DelayDistribution):
    """``τ ~ LogNormal(µ, σ²)`` — the heavy-tailed synthetic dataset.

    Used by Figure 10 (sort time) and Figure 22 (downstream LSTM, with
    ``LogNormal(1, σ)``).  ``σ = 0`` degenerates to a constant delay
    ``e^µ`` (the paper's "LogNormal(1, 0) ... means no delayed points").
    """

    def __init__(self, mu: float = 0.0, sigma: float = 1.0) -> None:
        if sigma < 0:
            raise InvalidParameterError(f"sigma must be >= 0, got {sigma}")
        self.mu = mu
        self.sigma = sigma

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if self.sigma == 0:
            return np.full(n, math.exp(self.mu))
        return rng.lognormal(mean=self.mu, sigma=self.sigma, size=n)

    def pdf(self, t: float) -> float:
        if t <= 0:
            return 0.0
        if self.sigma == 0:
            return math.inf if t == math.exp(self.mu) else 0.0
        z = (math.log(t) - self.mu) / self.sigma
        return _norm_pdf(z) / (t * self.sigma)

    def cdf(self, t: float) -> float:
        if t <= 0:
            return 0.0
        if self.sigma == 0:
            return 1.0 if t >= math.exp(self.mu) else 0.0
        return _norm_cdf((math.log(t) - self.mu) / self.sigma)

    def mean(self) -> float:
        return math.exp(self.mu + 0.5 * self.sigma * self.sigma)


class UniformDelay(DelayDistribution):
    """``τ ~ Uniform[a, b]`` — a simple bounded continuous delay."""

    def __init__(self, low: float = 0.0, high: float = 1.0) -> None:
        if low < 0 or high <= low:
            raise InvalidParameterError(
                f"need 0 <= low < high, got low={low}, high={high}"
            )
        self.low = low
        self.high = high

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    def pdf(self, t: float) -> float:
        if self.low <= t <= self.high:
            return 1.0 / (self.high - self.low)
        return 0.0

    def cdf(self, t: float) -> float:
        if t < self.low:
            return 0.0
        if t > self.high:
            return 1.0
        return (t - self.low) / (self.high - self.low)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    def delay_difference_tail(self, length: float) -> float:
        # Δτ is triangular on [-(b-a), b-a].
        width = self.high - self.low
        if length >= width:
            return 0.0
        if length <= -width:
            return 1.0
        if length >= 0:
            return 0.5 * (1.0 - length / width) ** 2
        return 1.0 - 0.5 * (1.0 + length / width) ** 2


class DiscreteUniformDelay(DelayDistribution):
    """``P(τ = k) = 1/m`` for ``k in {0, ..., m-1}`` — Example 7's delay.

    With ``m = 4`` the paper computes ``E(Q) = E(Δτ⁺) = 10/16 = 5/8``.
    """

    discrete = True

    def __init__(self, m: int = 4) -> None:
        if m < 1:
            raise InvalidParameterError(f"m must be >= 1, got {m}")
        self.m = m

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.integers(0, self.m, size=n).astype(float)

    def pdf(self, t: float) -> float:
        if t == int(t) and 0 <= t < self.m:
            return 1.0 / self.m
        return 0.0

    def cdf(self, t: float) -> float:
        if t < 0:
            return 0.0
        return min(1.0, (math.floor(t) + 1) / self.m)

    def mean(self) -> float:
        return (self.m - 1) / 2.0

    def delay_difference_pmf(self, d: int) -> float:
        """Triangular pmf of Δτ: ``P(Δτ = d) = (m - |d|) / m²`` for |d| < m."""
        if abs(d) >= self.m:
            return 0.0
        return (self.m - abs(d)) / (self.m * self.m)

    def delay_difference_tail(self, length: float) -> float:
        # P(Δτ > L) summed over the triangular pmf.
        k = math.floor(length)
        total = 0.0
        for d in range(max(k + 1, -(self.m - 1)), self.m):
            if d > length:
                total += self.delay_difference_pmf(d)
        return total


class MixtureDelay(DelayDistribution):
    """A finite mixture of delay distributions.

    Real device traces are rarely unimodal: most points arrive almost on
    time while a small fraction suffers bursty, much larger delays (network
    hiccups, duty-cycled radios).  The simulated Samsung/CitiBike datasets
    in :mod:`repro.workloads.datasets` are built from such mixtures.
    """

    def __init__(self, components: list[tuple[float, DelayDistribution]]) -> None:
        if not components:
            raise InvalidParameterError("mixture needs at least one component")
        total = sum(w for w, _ in components)
        if total <= 0 or any(w < 0 for w, _ in components):
            raise InvalidParameterError("mixture weights must be >= 0 with a positive sum")
        self.components = [(w / total, dist) for w, dist in components]
        self.discrete = all(dist.discrete for _, dist in self.components)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        weights = np.array([w for w, _ in self.components])
        choices = rng.choice(len(self.components), size=n, p=weights)
        out = np.empty(n)
        for idx, (_, dist) in enumerate(self.components):
            mask = choices == idx
            count = int(mask.sum())
            if count:
                out[mask] = dist.sample(count, rng)
        return out

    def pdf(self, t: float) -> float:
        return sum(w * dist.pdf(t) for w, dist in self.components)

    def cdf(self, t: float) -> float:
        return sum(w * dist.cdf(t) for w, dist in self.components)

    def mean(self) -> float:
        return sum(w * dist.mean() for w, dist in self.components)


class ParetoDelay(DelayDistribution):
    """``τ ~ Pareto(α) - 1`` scaled — a heavy-tail stressor beyond the paper.

    Heavy-tailed delays violate the "not-too-distant" assumption, pushing
    Backward-Sort toward its Quicksort degenerate case; used by the
    robustness tests and ablation benchmarks.
    """

    def __init__(self, alpha: float = 2.0, scale: float = 1.0) -> None:
        if alpha <= 0 or scale <= 0:
            raise InvalidParameterError(
                f"need alpha > 0 and scale > 0, got alpha={alpha}, scale={scale}"
            )
        self.alpha = alpha
        self.scale = scale

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return self.scale * rng.pareto(self.alpha, size=n)

    def pdf(self, t: float) -> float:
        if t < 0:
            return 0.0
        x = t / self.scale + 1.0
        return (self.alpha / self.scale) * x ** (-self.alpha - 1.0)

    def cdf(self, t: float) -> float:
        if t < 0:
            return 0.0
        return 1.0 - (t / self.scale + 1.0) ** (-self.alpha)

    def mean(self) -> float:
        if self.alpha <= 1:
            return math.inf
        return self.scale / (self.alpha - 1.0)
