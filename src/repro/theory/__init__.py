"""Delay-distribution theory: Propositions 1-6 in executable form."""

from repro.theory.delay_difference import (
    delay_difference_pdf_curve,
    delay_difference_pdf_numeric,
    delay_difference_tail_numeric,
    verify_even_pdf,
)
from repro.theory.distributions import (
    AbsNormalDelay,
    ConstantDelay,
    DelayDistribution,
    DiscreteUniformDelay,
    ExponentialDelay,
    LogNormalDelay,
    MixtureDelay,
    ParetoDelay,
    UniformDelay,
)
from repro.theory.predictions import (
    cost_model,
    expected_block_size_search,
    expected_iir,
    expected_overlap,
    expected_strict_overlap,
    optimal_block_size,
    predicted_complexity,
)

__all__ = [
    "AbsNormalDelay",
    "ConstantDelay",
    "DelayDistribution",
    "DiscreteUniformDelay",
    "ExponentialDelay",
    "LogNormalDelay",
    "MixtureDelay",
    "ParetoDelay",
    "UniformDelay",
    "cost_model",
    "delay_difference_pdf_curve",
    "delay_difference_pdf_numeric",
    "delay_difference_tail_numeric",
    "expected_block_size_search",
    "expected_iir",
    "expected_overlap",
    "expected_strict_overlap",
    "optimal_block_size",
    "predicted_complexity",
    "verify_even_pdf",
]
