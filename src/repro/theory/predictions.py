"""Analytical predictions of the paper's Propositions 2-6.

Everything the benchmark harness compares measurements against lives here:

* :func:`expected_iir` — Proposition 2: ``E(α_L) = F̄_Δτ(L)``.
* :func:`expected_overlap` — Propositions 4's bound / Equation 20:
  ``E(Q) <= Σ_{k>=0} F̄_Δτ(k) = E(Δτ⁺)`` (equality for discrete Δτ).
* :func:`cost_model` / :func:`optimal_block_size` — Proposition 5's
  objective ``g(L) = n (ln L + η Q / L)`` with minimiser ``L* = η Q``.
* :func:`predicted_complexity` — Proposition 6's bound
  ``O(max{n log n, n log L0 + η n Q / L0})``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import InvalidParameterError
from repro.theory.distributions import DelayDistribution


def expected_iir(dist: DelayDistribution, interval: float) -> float:
    """Proposition 2: the expected interval inversion ratio at ``L``."""
    if interval < 0:
        raise InvalidParameterError(f"interval must be >= 0, got {interval}")
    return dist.delay_difference_tail(interval)


def expected_overlap(dist: DelayDistribution, max_terms: int = 100_000) -> float:
    """The Proposition 4 bound on the expected merge overlap ``E(Q)``.

    Discrete Δτ: the exact ``Σ_{k>=0} F̄_Δτ(k)`` of Equation 20.
    Continuous Δτ: the integral bound ``∫_0^∞ F̄_Δτ(t) dt`` of Equation 21,
    evaluated by adaptive trapezoidal quadrature until the tail contributes
    less than 1e-9 (capped at ``max_terms`` panels).
    """
    if dist.discrete:
        total = 0.0
        k = 0
        while k < max_terms:
            term = dist.delay_difference_tail(float(k))
            if term <= 0.0:
                break
            total += term
            k += 1
        return total
    # E(Δτ⁺) = E[max(τ_i - τ_j, 0)] evaluated as one vectorised double
    # integral over a quantile-bounded grid: Σ_{x>y} (x - y) f(x) f(y) ΔxΔy.
    from repro.theory.delay_difference import _support_upper_bound

    upper = _support_upper_bound(dist)
    edges = np.linspace(0.0, upper, 2050)
    xs = 0.5 * (edges[:-1] + edges[1:])  # midpoint rule: robust to the
    dx = edges[1] - edges[0]  # pdf discontinuity many delays have at 0
    weights = np.vectorize(dist.pdf, otypes=[float])(xs) * dx
    diff = np.maximum(xs[:, None] - xs[None, :], 0.0)
    return float(weights @ diff @ weights)


def expected_strict_overlap(dist: DelayDistribution, max_terms: int = 100_000) -> float:
    """``Σ_{k>=1} F̄_Δτ(k)`` — the overlap sum without the boundary term.

    The paper's Equation 19 telescopes ``Σ_{i<m} P(Δτ > m - i)`` into
    ``Σ_k F̄_Δτ(k)``; since ``i < m`` forces ``m - i >= 1``, the empirically
    measurable mean overhang equals the sum *from k = 1*.  Equation 20
    starts the sum at ``k = 0`` (adding ``P(Δτ > 0)``), which upper-bounds
    the measurement; this function provides the tight value so the property
    tests can assert equality for discrete delays, not just the bound.
    """
    if dist.discrete:
        total = 0.0
        k = 1
        while k < max_terms:
            term = dist.delay_difference_tail(float(k))
            if term <= 0.0:
                break
            total += term
            k += 1
        return total
    total = 0.0
    k = 1
    while k < max_terms:
        term = dist.delay_difference_tail(float(k))
        if term <= 1e-12 * max(total, 1.0):
            break
        total += term
        k += 1
    return total


def cost_model(n: int, block_size: float, overlap: float, eta: float = 1.0) -> float:
    """Equation 23: ``g(L) = n (ln L + η Q / L)`` for ``L in [1, n]``."""
    if block_size < 1:
        raise InvalidParameterError(f"block_size must be >= 1, got {block_size}")
    return n * (math.log(block_size) + eta * overlap / block_size)


def optimal_block_size(overlap: float, eta: float = 1.0, n: int | None = None) -> float:
    """Minimiser of the cost model: ``L* = η Q`` (from ``g'(L) = 0``).

    Clamped to ``[1, n]`` when ``n`` is given — outside that range the
    algorithm degenerates (Proposition 5): towards Insertion-Sort below,
    towards Quicksort above.
    """
    best = max(1.0, eta * overlap)
    if n is not None:
        best = min(best, float(n))
    return best


def predicted_complexity(
    n: int, l0: int, overlap: float, eta: float = 1.0
) -> float:
    """Proposition 6: ``max{n log n, n log L0 + η n Q / L0}`` (natural log)."""
    if n < 2:
        return float(n)
    return max(
        n * math.log(n),
        n * math.log(max(l0, 2)) + eta * n * overlap / l0,
    )


def expected_block_size_search(
    dist: DelayDistribution, theta: float, l0: int, n: int
) -> int:
    """Predict the ``L`` the set-block-size phase converges to.

    Doubles ``L`` from ``L0`` until ``E(α_L) = F̄_Δτ(L) < Θ`` (or ``L > n``),
    mirroring Algorithm 1 lines 1-8 with the *expected* ratio in place of
    the sampled one.  Used to sanity-check the empirical search.
    """
    if l0 < 1:
        raise InvalidParameterError(f"l0 must be >= 1, got {l0}")
    size = l0
    while size <= n:
        if expected_iir(dist, float(size)) < theta:
            break
        size *= 2
    return min(size, n)
